(** The first-class engine interface.

    Every execution engine in this library — the transition-centric
    {!Imfant}, the lazy-DFA {!Hybrid}, the per-rule baselines
    {!Infant} and {!Dfa_engine}, the decomposition matcher
    {!Decomposed} — answers the same question: given a compiled MFSA
    and an input, which merged FSAs match where?  {!S} captures that
    contract once, so callers (the live-update layer, the CLIs, the
    benchmark harness, the serving layer) select an engine by name
    through {!Registry} instead of hard-wiring per-engine branches.

    {!t} is the packed form: an existential pairing a first-class
    module implementing {!S} with one of its compiled values, so a
    caller can hold "a compiled engine" without knowing which. The
    {!run}/{!count}/{!session} wrappers below unpack it.

    All implementations share the matching conventions of {!Imfant}:
    unanchored matching with per-FSA [^]/[$] flags honoured, non-empty
    matches, one report per (FSA, end position), events ordered by end
    position (ties by FSA id, except where an implementation documents
    transition order within a position — compare sorted lists when the
    within-position order matters).

    Compiled engines own mutable scratch (state vectors, caches,
    counters): a compiled value must not be shared across domains.
    Compile one replica per domain — {!Mfsa_serve.Serve} does exactly
    that.

    {b Domain confinement of [stats]/[reset_stats]:} engine counters
    are plain mutable fields updated inside {!S.run}, so reading them
    from another domain while the owner is mid-run is an
    unsynchronized cross-domain access. The rule is that {e every}
    operation on a compiled value — including [stats] and
    [reset_stats] — must run on the domain that owns it.
    {!Mfsa_serve.Serve.snapshot} honours this by routing replica stat
    reads through the worker protocol: each worker snapshots its own
    replica at a quiescent point (between jobs) and publishes the
    result under the service lock. *)

type match_event = { fsa : int; end_pos : int }
(** A match of merged FSA [fsa] ending at byte offset [end_pos]. The
    per-engine event types ({!Imfant.match_event},
    {!Hybrid.match_event}) are equalities with this one. *)

(** The common engine signature. *)
module type S = sig
  val name : string
  (** Registry name, lowercase (["imfant"], ["hybrid"], …). *)

  val doc : string
  (** One-line description for [-e help] listings. *)

  type compiled
  (** A compiled automaton plus the engine's mutable scratch. *)

  val compile : Mfsa_model.Mfsa.t -> compiled

  val of_tables : (Tables.t -> compiled) option
  (** The engine's {e artifact-loading capability}, an optional in the
      same spirit as {!Registry.register_restricted}: [Some load]
      means the engine can come up directly from a persisted table
      bundle in O(size) with no re-derivation ([imfant], [hybrid]);
      [None] means it cannot (the per-rule baselines re-derive
      per-projection tables the bundle does not carry, and the
      [faulty{..}] wrapper never loads artifacts), and
      {!Registry}-level compilation from an artifact source fails
      with a clean one-line user error instead of a backtrace. *)

  val to_tables : compiled -> Tables.t option
  (** The inverse capability: the compiled state as a shareable table
      bundle, [None] for engines whose compiled form is not
      table-shaped. The bundle is immutable post-export, so one
      compile can seed many replicas through {!of_tables} in O(size)
      each — {!Mfsa_serve.Serve} uses exactly this to stop paying one
      full pipeline run per domain. Table-capable engines should
      satisfy the round trip: [load (to_tables c)] behaves like
      [c] freshly compiled. May force lazily-built derivations (the
      CSR index). *)

  val mfsa : compiled -> Mfsa_model.Mfsa.t
  (** The underlying automaton. *)

  val run : compiled -> string -> match_event list
  (** All matches on one input. *)

  val count : compiled -> string -> int
  (** Number of match events, without materialising the list — the
      timing entry point of the benchmarks. *)

  val count_per_fsa : compiled -> string -> int array
  (** Match counts per merged FSA (the agreement-check primitive). *)

  val stats : compiled -> Mfsa_obs.Snapshot.t
  (** Engine counters as a typed metric snapshot, every sample
      labelled [engine=<name>] and named in the [mfsa_engine_*]
      namespace (catalogue in the README's Observability section).
      Every engine reports something: at minimum its automaton size,
      plus whatever instrumentation it accumulates across {!run}s
      (iMFAnt: active-set pressure; hybrid: cache behaviour; DFA:
      table size). Snapshots feed the {!Mfsa_obs.Snapshot} exporters
      directly and merge with pipeline and serving metrics. *)

  val reset_stats : compiled -> unit
  (** Return the observable metric state to that of a fresh
      {!compile}: cumulative counters to zero, and any internal state
      the metrics expose (the hybrid's configuration cache) dropped
      with them — [reset_stats] followed by a run reproduces the
      metric snapshot of a fresh compile, the reproducibility
      property the test suite checks. A no-op for engines without
      mutable instrumentation. *)

  val reset_counters : compiled -> unit
  (** Zero the cumulative counters {e only}, leaving warm state (the
      hybrid's configuration cache, lazily built stride tables, the
      adaptive capacity) in place. This is the measurement-window
      reset: the benchmark harness calls it between repetitions so
      each rep's snapshot reflects steady-state behaviour, not the
      warm-up of earlier reps. For engines whose metrics expose no
      warm state it coincides with {!reset_stats}. *)

  (** {2 Streaming}

      Feeding chunks [c1, …, cn] then {!finish} produces exactly
      [run c (c1 ^ … ^ cn)]: end positions are global stream offsets
      and end-anchored FSAs report at {!finish}. Engines without
      native cross-chunk state (the per-rule baselines) satisfy the
      contract by re-scanning a buffered copy of the stream — correct,
      but quadratic in stream length; use [imfant]/[hybrid] for real
      streaming workloads. *)

  type session

  val session : compiled -> session
  (** Fresh session at stream position 0. *)

  val feed : session -> string -> match_event list
  (** Consume one chunk; matches completed in it (except end-anchored
      ones). *)

  val finish : session -> match_event list
  (** End of stream: the pending matches of end-anchored FSAs. The
      session stays valid for {!reset}. *)

  val reset : session -> unit
  (** Back to position 0. *)

  val position : session -> int
  (** Bytes consumed since the last {!reset}. *)
end

(** {2 Packed engines} *)

type t =
  | Packed :
      (module S with type compiled = 'c and type session = 's) * 'c
      -> t
(** A compiled engine with its implementation erased. *)

type session =
  | Session :
      (module S with type compiled = 'c and type session = 's) * 's
      -> session

val pack : (module S with type compiled = 'c and type session = 's) -> 'c -> t

val name : t -> string
val mfsa : t -> Mfsa_model.Mfsa.t
val to_tables : t -> Tables.t option
val run : t -> string -> match_event list
val count : t -> string -> int
val count_per_fsa : t -> string -> int array
val stats : t -> Mfsa_obs.Snapshot.t
val reset_stats : t -> unit
val reset_counters : t -> unit

val session : t -> session
val feed : session -> string -> match_event list
val finish : session -> match_event list
val reset : session -> unit
val position : session -> int

(** Deterministic scanning engine — the DFA baseline of the paper's
    Background (§II): one table lookup per input byte, constant-time
    traversal, at the price of subset-construction state growth.

    Unanchored matching is compiled in rather than simulated: the
    engine determinises the rule's NFA augmented with an all-bytes
    self-loop on a fresh start state (the classic [.*R] scanning
    construction), so the run is a single-state walk that reports a
    match whenever the current state is accepting. Match semantics
    are specified to agree exactly with {!Infant} /
    {!Mfsa_automata.Simulate.match_ends} (non-empty matches, per-end
    deduplication, anchors honoured) — the property suite checks
    this.

    The transition table is stored class-indexed: the DFA's byte
    equivalence classes ({!Mfsa_automata.Stride.byte_classes}) fold
    the 256-way rows down to one cell per class, shrinking the table
    by the alphabet-reduction factor while keeping the one-lookup
    step (a 256-entry byte → class map is consulted first). Tuned by
    {!Tuning.t.classes} at compile time. *)

type t

val compile : ?minimize:bool -> Mfsa_automata.Nfa.t -> t
(** Build the scanning DFA ([minimize] defaults to [true], running
    Hopcroft on the augmented automaton). The input must be ε-free.
    @raise Invalid_argument on ε-arcs. *)

val run : t -> string -> int list
(** Match end positions, ascending. *)

val count : t -> string -> int

val n_states : t -> int
(** Scanning-DFA size — the state-explosion metric of §II. *)

val n_classes : t -> int
(** Byte-equivalence classes indexing the table (256 when class
    compression was tuned off at compile time). *)

val table_cells : t -> int
(** Resident transition-table cells: [n_states * n_classes]. *)

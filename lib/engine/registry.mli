(** The engine registry: names to first-class engine modules.

    One table maps engine names to implementations of
    {!Engine_sig.S}. Everything that selects an execution engine — the
    [-e/--engine] flag of [mfsa-match], [mfsa-live] and the benchmark
    driver, [Live.create ~engine], the engine-compare experiment, the
    {!Mfsa_serve.Serve} replicas — resolves the name here, so adding
    an engine means registering one module, not editing five call
    sites.

    Registered out of the box:

    - ["imfant"] — {!Imfant}, the transition-centric MFSA engine
      (paper §V); accumulates the active-set instrumentation of
      Table II across runs.
    - ["hybrid"] — {!Hybrid}, the lazy-DFA configuration cache over
      iMFAnt.
    - ["infant"] — {!Infant} on each FSA projected out of the MFSA:
      the paper's per-rule baseline (M = 1 work on the merged
      semantics).
    - ["dfa"] — {!Dfa_engine} per projected rule: scanning DFAs,
      subset construction + Hopcroft.
    - ["decomposed"] — {!Decomposed} over the projected rules:
      literal pre-filter + confirmation.
    - ["ac"] — pure {!Aho_corasick} over the rules' literals. A
      {e restricted} engine: it compiles only rulesets in which every
      rule denotes a finite literal set
      ({!Prefilter.exact_strings}) and raises [Invalid_argument] on
      anything else, so it appears in {!names}/{!help} but not in
      {!general_names}.
    - ["auto"] — the {!Planner} meta-engine: picks ["imfant"],
      ["hybrid"] or ["dfa"] per ruleset from static compile-time
      features (literal coverage, rule count, merged size), then
      delegates; when the plan was ["hybrid"] it monitors the
      windowed cache hit rate online and {!Hybrid.demote}s to pure
      NFA stepping on sustained churn — sessions keep their state
      across the demotion. Its stats are the inner engine's series
      relabelled [engine="auto"] plus [mfsa_engine_planner_*].

    The per-rule baselines satisfy the streaming half of the signature
    by re-scanning a buffered copy of the stream (documented in
    {!Engine_sig.S}); their match semantics are identical.

    Beyond the table, the registry resolves the {!Faulty} wrapper
    grammar: any name of the form [faulty{k=v,...}:<engine>] (the
    parameter block optional, wrappers nestable) denotes the named
    engine behind a seeded deterministic fault injector — the
    reproducible failure source the {!Mfsa_serve.Serve}
    fault-tolerance tests and CI smoke run against. Wrapper names are
    resolvable by {!find}/{!compile} but do not appear in {!names}. *)

val register : (module Engine_sig.S) -> unit
(** Make an engine selectable by name. Re-registering a name replaces
    the previous entry (latest wins), so tests and downstream
    libraries can shadow built-ins. *)

val find : string -> (module Engine_sig.S) option
(** Table lookup, falling back to the [faulty{...}:<inner>] wrapper
    grammar ([None] on a malformed spec — {!compile} carries the
    detailed message). *)

val find_exn : string -> (module Engine_sig.S)
(** @raise Invalid_argument on an unknown name, listing the
    registered ones (or detailing a malformed wrapper spec). *)

val underlying : string -> string
(** The innermost engine name once every [faulty] wrapper is
    stripped: [underlying "faulty{seed=3}:imfant" = "imfant"] — what a
    fault-injected serving run compares against as its clean
    sequential baseline. The identity on non-wrapper names. *)

val register_restricted : (module Engine_sig.S) -> unit
(** {!register}, additionally marking the name as {e restricted}: the
    engine accepts only a subset of rulesets (raising on the rest), so
    it is excluded from {!general_names} and hence from the blind
    cross-engine iteration of the experiments. *)

val names : unit -> string list
(** Registered names, sorted. *)

val general_names : unit -> string list
(** {!names} minus the restricted engines — the set safe to compile
    against an arbitrary ruleset. *)

val doc : string -> string option
(** The engine's one-line description. *)

val help : unit -> string
(** A ready-to-print listing, one ["name — doc"] line per engine —
    what [-e help] shows. *)

val unknown_message : string -> string
(** The shared error message for an unrecognised engine name. *)

(** {2 The unified compile surface}

    One entrypoint from "where the automata come from" ({!Source.t}:
    rules, pre-built automata, or a binary artifact) to running packed
    engines — what [mfsa-match], [mfsa-live], [mfsa-served] and the
    bench harness all call. *)

val compile : string -> Source.t -> (Engine_sig.t list, string) result
(** Resolve the engine name, resolve the source, and compile one
    packed instance per automaton the source yields. [Error] carries
    engine-level failures (unknown name, malformed wrapper spec, or
    an artifact source handed to an engine without a table loader —
    checked {e before} the artifact is read). Source-level failures
    propagate as their own typed exceptions: the pipeline's
    [Compile_error] for bad rules, the artifact library's error for a
    bad artifact, [Source.Error] for an unreadable file. *)

val compile_exn : string -> Source.t -> Engine_sig.t list
(** @raise Invalid_argument on the [Error] cases of {!compile} (plus
    the source-level exceptions it lets through). *)

(** {2 Per-automaton compilation}

    The lower-level half of {!compile}, for callers that already hold
    an automaton or a table bundle (the serving layer's replica
    spawns, the live layer's generation refreshes, the experiment
    drivers). *)

val compile_automaton : string -> Mfsa_model.Mfsa.t -> (Engine_sig.t, string) result
(** Resolve the name and compile a packed engine instance. *)

val compile_automaton_exn : string -> Mfsa_model.Mfsa.t -> Engine_sig.t
(** @raise Invalid_argument on an unknown name. *)

val compile_tables : string -> Tables.t -> (Engine_sig.t, string) result
(** Adopt a persisted table bundle through the engine's
    {!Engine_sig.S.of_tables} capability; [Error] with a clean
    one-line message when the engine has none. *)

val compile_tables_exn : string -> Tables.t -> Engine_sig.t

val can_load_tables : string -> bool
(** Whether the named engine has a table loader ([false] also for
    unknown names). [faulty{..}] wrappers never do: fault injection
    exists to test the compile-from-source recovery paths. *)

val table_capable_names : unit -> string list
(** The registered engines that can load artifacts, sorted. *)

val no_table_loader : string -> string
(** The shared one-line error for an artifact source handed to an
    engine without a table loader (lists the capable engines) — what
    {!compile} and {!compile_tables} say, exported so other serving
    entry points report the identical wording. *)

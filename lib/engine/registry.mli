(** The engine registry: names to first-class engine modules.

    One table maps engine names to implementations of
    {!Engine_sig.S}. Everything that selects an execution engine — the
    [-e/--engine] flag of [mfsa-match], [mfsa-live] and the benchmark
    driver, [Live.create ~engine], the engine-compare experiment, the
    {!Mfsa_serve.Serve} replicas — resolves the name here, so adding
    an engine means registering one module, not editing five call
    sites.

    Registered out of the box:

    - ["imfant"] — {!Imfant}, the transition-centric MFSA engine
      (paper §V); accumulates the active-set instrumentation of
      Table II across runs.
    - ["hybrid"] — {!Hybrid}, the lazy-DFA configuration cache over
      iMFAnt.
    - ["infant"] — {!Infant} on each FSA projected out of the MFSA:
      the paper's per-rule baseline (M = 1 work on the merged
      semantics).
    - ["dfa"] — {!Dfa_engine} per projected rule: scanning DFAs,
      subset construction + Hopcroft.
    - ["decomposed"] — {!Decomposed} over the projected rules:
      literal pre-filter + confirmation.
    - ["ac"] — pure {!Aho_corasick} over the rules' literals. A
      {e restricted} engine: it compiles only rulesets in which every
      rule denotes a finite literal set
      ({!Prefilter.exact_strings}) and raises [Invalid_argument] on
      anything else, so it appears in {!names}/{!help} but not in
      {!general_names}.

    The per-rule baselines satisfy the streaming half of the signature
    by re-scanning a buffered copy of the stream (documented in
    {!Engine_sig.S}); their match semantics are identical.

    Beyond the table, the registry resolves the {!Faulty} wrapper
    grammar: any name of the form [faulty{k=v,...}:<engine>] (the
    parameter block optional, wrappers nestable) denotes the named
    engine behind a seeded deterministic fault injector — the
    reproducible failure source the {!Mfsa_serve.Serve}
    fault-tolerance tests and CI smoke run against. Wrapper names are
    resolvable by {!find}/{!compile} but do not appear in {!names}. *)

val register : (module Engine_sig.S) -> unit
(** Make an engine selectable by name. Re-registering a name replaces
    the previous entry (latest wins), so tests and downstream
    libraries can shadow built-ins. *)

val find : string -> (module Engine_sig.S) option
(** Table lookup, falling back to the [faulty{...}:<inner>] wrapper
    grammar ([None] on a malformed spec — {!compile} carries the
    detailed message). *)

val find_exn : string -> (module Engine_sig.S)
(** @raise Invalid_argument on an unknown name, listing the
    registered ones (or detailing a malformed wrapper spec). *)

val underlying : string -> string
(** The innermost engine name once every [faulty] wrapper is
    stripped: [underlying "faulty{seed=3}:imfant" = "imfant"] — what a
    fault-injected serving run compares against as its clean
    sequential baseline. The identity on non-wrapper names. *)

val register_restricted : (module Engine_sig.S) -> unit
(** {!register}, additionally marking the name as {e restricted}: the
    engine accepts only a subset of rulesets (raising on the rest), so
    it is excluded from {!general_names} and hence from the blind
    cross-engine iteration of the experiments. *)

val names : unit -> string list
(** Registered names, sorted. *)

val general_names : unit -> string list
(** {!names} minus the restricted engines — the set safe to compile
    against an arbitrary ruleset. *)

val doc : string -> string option
(** The engine's one-line description. *)

val help : unit -> string
(** A ready-to-print listing, one ["name — doc"] line per engine —
    what [-e help] shows. *)

val unknown_message : string -> string
(** The shared error message for an unrecognised engine name. *)

val compile : string -> Mfsa_model.Mfsa.t -> (Engine_sig.t, string) result
(** Resolve the name and compile a packed engine instance. *)

val compile_exn : string -> Mfsa_model.Mfsa.t -> Engine_sig.t
(** @raise Invalid_argument on an unknown name. *)

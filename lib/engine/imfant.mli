(** The iMFAnt execution algorithm — iNFAnt extended to MFSAs (paper
    §V).

    iMFAnt keeps iNFAnt's symbol-first transition table and state
    vector, and adds to every active state the result of the
    activation function [J] upon reaching it. For each input byte,
    every transition [q1 --c--> q2] the byte enables is checked for
    {e consistency}: the new activation set

    [J' = (J(q1) ∪ {j | q1 initial for j}) ∩ bel(q1 --c--> q2)]

    applies Equation 4 (an FSA j is pushed when leaving its initial
    state) and Equation 6 (an FSA j is popped when the traversed
    transition does not belong to it); the move is performed only when
    [J' ≠ ∅]. Every [j ∈ J'] for which [q2] is final yields a match
    for FSA [j] (Equation 5). This prevents the false-positive
    over-matching of a naively merged automaton: a path is accepted
    only if at least one FSA stays active along all of it (Equation 9).

    Matching conventions are those of {!Infant}: unanchored (per-FSA
    [^]/[$] flags honoured), non-empty matches, one report per
    (FSA, end position). *)

type t
(** Compiled MFSA: pre-processing of the extended-ANML-level automaton
    into the engine's table, done once per MFSA. The hot-loop tuning
    in force at compile time ({!Tuning}) is baked in: transition
    tables are indexed by byte-equivalence class ({!Mfsa_model.Mfsa.classes},
    identity partition when tuned off) and a literal prefilter
    ({!Prefilter}) is attached when usable. *)

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type stats = {
  positions : int;  (** Input bytes processed. *)
  avg_active : float;
      (** Mean over input positions of the number of distinct FSAs
          active after consuming the byte — the [Avg Nact] column of
          the paper's Table II. *)
  max_active : int;  (** Peak of the same quantity ([Max Nact]). *)
}

val compile : Mfsa_model.Mfsa.t -> t

val of_tables : Tables.t -> t
(** Adopt a pre-derived table bundle (an artifact load, or another
    engine's export) in O(size of the tables): nothing is re-derived
    except the O(states) anchored-position split, and the CSR index
    stays lazy when the bundle omits it. The bundle's recorded
    {!Tables.t.tuning} is baked in — the current global tuning is not
    consulted. The bundle's arrays are shared, not copied: they must
    not be mutated afterwards. *)

val export_tables : t -> Tables.t
(** The complete compiled state minus mutable scratch, for the
    artifact layer. Forces the lazy CSR index (artifacts exist to make
    loads cheap, so the expensive derivations are all materialised).
    [of_tables (export_tables t)] behaves exactly like [t]. *)

val mfsa : t -> Mfsa_model.Mfsa.t
(** The underlying automaton. *)

val tuning : t -> Tuning.t
(** The hot-loop tuning snapshotted when this engine was compiled (or
    recorded in the tables it was adopted from). *)

val run : t -> string -> match_event list
(** All matches, ordered by end position (ties by FSA id). *)

val count : t -> string -> int
(** Total number of match events. *)

val run_with_stats : t -> string -> match_event list * stats
(** [run] plus the active-set instrumentation of Table II. *)

val count_per_fsa : t -> string -> int array
(** Match counts per merged FSA — used by the equivalence tests and
    the per-rule reporting. *)

(** {2 Chunked execution}

    Primitives for the SFA-style intra-input parallelism of
    {!Sfa}: the per-byte step distributes over thread-set union, so
    the sequential configuration at a chunk boundary is
    (threads injected inside the chunk) ∪ (the carried-in boundary
    configuration stepped with no injection). The first term is
    computed by {!run_chunk} — embarrassingly parallel across chunks —
    and the second by {!carry_step} during the left-to-right join. *)

type carry = int array * Mfsa_util.Bitset.t array
(** An explicit boundary configuration: active states in ascending
    order paired with their activation sets. Plain arrays with no
    aliasing into engine scratch — safe to hand across domains. *)

val empty_carry : carry

val run_chunk :
  t -> string -> start:int -> stop:int -> on_match:(int -> int -> unit) ->
  carry * int
(** Injection-driven local pass over [input.[start..stop-1]]:
    [execute] restricted to the window. Global position 0 (when
    [start = 0]) keeps the anchored-start injection; prefilter
    candidates are computed on the window extended by [max_len - 1]
    bytes so literals straddling the chunk end still inject at their
    in-chunk start; end-anchored matches only fire at the global end
    of input. Returns the carry-out configuration after the last
    chunk byte and the bytes the prefilter skipped. Does not mutate
    the engine: concurrent calls over one shared [t] are safe. *)

val carry_step :
  t -> carry -> string -> start:int -> stop:int ->
  on_match:(int -> int -> unit) -> carry * int
(** Step a carried boundary configuration through
    [input.[start..stop-1]] with {e no} injection, reporting the
    matches the carried threads complete. Early-exits as soon as the
    carried set dies; returns the surviving carry and the bytes
    actually consumed. Forces the CSR index. *)

val carry_union : carry -> carry -> carry
(** Pointwise union of two boundary configurations; arguments are not
    mutated. *)

(** {2 Streaming}

    Deep-packet-inspection engines see traffic in chunks; a session
    carries the state vector across {!feed} calls so matches spanning
    chunk boundaries are found. Feeding chunks [c1, …, cn] and then
    {!finish} produces exactly [run t (c1 ^ … ^ cn)] (end positions
    are global stream offsets); end-anchored rules report at
    {!finish}, when the end of the stream is known. *)

type session

val session : t -> session
(** Fresh session at stream position 0. *)

val feed : session -> string -> match_event list
(** Consume one chunk; matches completed within or at the end of this
    chunk (except end-anchored ones), ordered by end position. *)

val finish : session -> match_event list
(** End of stream: the pending matches of end-anchored FSAs. The
    session stays valid for {!reset}. *)

val reset : session -> unit
(** Back to position 0 with an empty state vector. *)

val position : session -> int
(** Bytes consumed so far. *)

(** {2 Compiled tables}

    Read-only views into the compiled representation, consumed by the
    lazy-DFA engine ({!Hybrid}) whose cache-miss path simulates the
    MFSA one configuration at a time. *)

val csr : t -> int array * int array
(** [(off, tr)]: row-indexed CSR over (state, class) cells, where the
    class alphabet is the one reported by {!n_classes}/{!class_of}.
    The transitions leaving state [q] on class [cls] are
    [tr.(off.(q*k+cls)) .. tr.(off.(q*k+cls+1) - 1)], in transition
    order. [off] has length [n_states*k + 1]. Built lazily on the
    first call ({!Hybrid.of_imfant} forces it) — imfant-only users
    should not pay for it. Must not be mutated. *)

val init_tables : t -> Mfsa_util.Bitset.t array * Mfsa_util.Bitset.t array
(** [(init_all, init_unanch)]: per-state initial FSA sets at position
    0 and at positions > 0 (start-anchored FSAs removed). Built once
    by {!compile}; must not be mutated. *)

val n_classes : t -> int
(** Size of the byte-class alphabet the tables are indexed by (256
    when compression was tuned off at compile time). *)

val class_of : t -> bytes
(** The 256-entry byte -> class map. Must not be mutated. *)

val prefilter : t -> Prefilter.t option
(** The literal prefilter compiled into this engine, if any. *)

val skipped_bytes : t -> int
(** Input bytes the prefilter allowed the batch entry points to jump
    over, cumulative since compile (or {!reset_skipped}). *)

val reset_skipped : t -> unit

(** Deterministic fault injection over any engine.

    [faulty] wraps another {!Engine_sig.S} implementation and makes it
    fail, stall or die on a {e seeded, reproducible} schedule — the
    test bed for everything {!Mfsa_serve.Serve}'s fault-tolerance
    layer does (retries, deadlines, replica supervision). Because the
    schedule is driven by an attempt counter and a {!Mfsa_util.Prng}
    stream seeded from the spec, a failing run replays exactly in a
    test or in CI.

    Selected through {!Registry} with the wrapper syntax

    {[
      faulty:imfant
      faulty{seed=7,fail_every=3,delay_ms=2}:hybrid
      faulty:faulty{poison_every=11}:imfant   (* wrappers nest *)
    ]}

    Parameters ([k=v], comma-separated):
    - [seed] — PRNG seed for the probabilistic modes (default 42);
    - [fail_every] — every k-th attempt raises {!Transient_fault}
      (default 5; 0 disables);
    - [poison_every] — every k-th attempt raises {!Replica_poisoned}
      and marks the replica poisoned: {e every} later call fails until
      the engine is recompiled (default 0);
    - [delay_every] — every k-th attempt first sleeps [delay_ms]
      milliseconds (default 0; [delay_ms] defaults to 1);
    - [fail]/[poison]/[delay] — probabilistic variants in [[0,1]],
      drawn from the seeded PRNG, composable with the deterministic
      ones.

    Faults fire {e before} the inner engine sees the input, so a
    retried attempt replays cleanly; streaming sessions delegate to
    the inner engine without injection. *)

exception Transient_fault of string
(** A one-off failure: retrying the same call may succeed. The string
    is the wrapper's full registry name. *)

exception Replica_poisoned of string
(** The replica is dead: every call fails until it is recompiled —
    what {!Mfsa_serve.Serve}'s supervision reacts to by respawning the
    worker's replica. *)

type config = {
  seed : int;
  fail_every : int;
  poison_every : int;
  delay_every : int;
  delay_ms : float;
  fail_p : float;
  poison_p : float;
  delay_p : float;
}

val default : config
(** [seed=42, fail_every=5], everything else off. *)

val split_spec : string -> ((config * string), string) result option
(** Parse a registry name against the wrapper grammar
    [faulty\{k=v,...\}:<inner>]. [None]: not a faulty spec at all.
    [Some (Error msg)]: faulty-shaped but malformed. [Some (Ok (cfg,
    inner))]: parsed; [inner] is the wrapped engine's name (itself
    resolvable, so wrappers nest). *)

val make : name:string -> config -> (module Engine_sig.S) -> (module Engine_sig.S)
(** [make ~name cfg (module E)] is the fault-injecting engine; [name]
    becomes its registry name (the full spec string, also the payload
    of the fault exceptions). Each [compile] gets its own attempt
    counter and PRNG, so every replica replays the same schedule
    independently. *)

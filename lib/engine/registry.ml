module Mfsa = Mfsa_model.Mfsa
module Snapshot = Mfsa_obs.Snapshot
open Engine_sig

(* ------------------------------------------------------------------ *)
(* Adapter plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let sort_events =
  List.stable_sort (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.fsa b.fsa)

(* The batch half of an engine, without streaming. *)
module type Base = sig
  val name : string
  val doc : string

  type compiled

  val compile : Mfsa.t -> compiled
  val of_tables : (Tables.t -> compiled) option
  val to_tables : compiled -> Tables.t option
  val mfsa : compiled -> Mfsa.t
  val run : compiled -> string -> match_event list
  val count : compiled -> string -> int
  val count_per_fsa : compiled -> string -> int array
  val stats : compiled -> Mfsa_obs.Snapshot.t
  val reset_stats : compiled -> unit
  val reset_counters : compiled -> unit
end

(* Streaming for engines without native cross-chunk state: keep the
   whole stream in a buffer and re-run it on every chunk, reporting
   only the events that end inside the new chunk. Correct by prefix
   determinism — a match ending at position p depends only on the
   stream's first p bytes — but quadratic in stream length; the
   native-session engines are the ones to use for streaming
   workloads. End-anchored FSAs are withheld until [finish], when the
   buffer end really is the stream end. *)
module Buffered_session (E : Base) :
  Engine_sig.S with type compiled = E.compiled = struct
  include E

  type session = { c : E.compiled; buf : Buffer.t; mutable pos : int }

  let session c = { c; buf = Buffer.create 256; pos = 0 }

  let feed s chunk =
    Buffer.add_string s.buf chunk;
    let old = s.pos in
    s.pos <- Buffer.length s.buf;
    if s.pos = old then []
    else
      let anchored_end = (E.mfsa s.c).Mfsa.anchored_end in
      List.filter
        (fun e -> e.end_pos > old && not anchored_end.(e.fsa))
        (E.run s.c (Buffer.contents s.buf))

  let finish s =
    let anchored_end = (E.mfsa s.c).Mfsa.anchored_end in
    List.filter
      (fun e -> anchored_end.(e.fsa))
      (E.run s.c (Buffer.contents s.buf))

  let reset s =
    Buffer.clear s.buf;
    s.pos <- 0

  let position s = s.pos
end

(* ------------------------------------------------------------------ *)
(* imfant                                                              *)
(* ------------------------------------------------------------------ *)

module Imfant_engine : Engine_sig.S = struct
  let name = "imfant"

  let doc =
    "transition-centric merged-automaton engine (paper \xc2\xa7V, the default)"

  (* [run] goes through the instrumented path so the Table II
     active-set pressure accumulates behind [stats]; [count] stays on
     the uninstrumented loop — it is the benchmarks' timing entry
     point. *)
  type compiled = {
    im : Imfant.t;
    mutable bytes : int;  (* bytes processed by instrumented runs *)
    mutable runs : int;
    mutable avg_active : float;  (* of the last run *)
    mutable max_active : int;  (* peak across runs *)
  }

  let compile z =
    { im = Imfant.compile z; bytes = 0; runs = 0; avg_active = 0.; max_active = 0 }

  let of_tables =
    Some
      (fun tb ->
        { im = Imfant.of_tables tb; bytes = 0; runs = 0; avg_active = 0.;
          max_active = 0 })

  let to_tables c = Some (Imfant.export_tables c.im)

  let mfsa c = Imfant.mfsa c.im

  let run c input =
    let events, st = Imfant.run_with_stats c.im input in
    c.bytes <- c.bytes + st.Imfant.positions;
    c.runs <- c.runs + 1;
    c.avg_active <- st.Imfant.avg_active;
    c.max_active <- max c.max_active st.Imfant.max_active;
    events

  let count c input = Imfant.count c.im input

  let count_per_fsa c input = Imfant.count_per_fsa c.im input

  let stats c =
    let z = mfsa c in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"States in the compiled automaton"
        "mfsa_engine_states" z.Mfsa.n_states;
      Snapshot.gauge_i ~labels ~help:"Transitions in the compiled automaton"
        "mfsa_engine_transitions" (Mfsa.n_transitions z);
      Snapshot.counter_i ~labels ~help:"Instrumented runs executed"
        "mfsa_engine_runs_total" c.runs;
      Snapshot.counter_i ~labels ~help:"Input bytes processed by instrumented runs"
        "mfsa_engine_bytes_total" c.bytes;
      Snapshot.gauge ~labels
        ~help:"Mean active FSAs per position of the last run (Table II)"
        "mfsa_engine_active_fsas_avg" c.avg_active;
      Snapshot.gauge_i ~labels
        ~help:"Peak active FSAs per position across runs (Table II)"
        "mfsa_engine_active_fsas_max" c.max_active;
      Snapshot.gauge_i ~labels
        ~help:"Byte-equivalence classes indexing the transition tables"
        "mfsa_engine_class_count" (Imfant.n_classes c.im);
      Snapshot.counter_i ~labels
        ~help:"Input bytes skipped by the literal prefilter"
        "mfsa_engine_prefilter_skipped_bytes_total" (Imfant.skipped_bytes c.im);
    ]

  let reset_stats c =
    c.bytes <- 0;
    c.runs <- 0;
    c.avg_active <- 0.;
    c.max_active <- 0;
    Imfant.reset_skipped c.im

  (* Nothing behind the counters is warm state: both resets agree. *)
  let reset_counters = reset_stats

  type session = Imfant.session

  let session c = Imfant.session c.im

  let feed = Imfant.feed

  let finish = Imfant.finish

  let reset = Imfant.reset

  let position = Imfant.position
end

(* ------------------------------------------------------------------ *)
(* hybrid                                                              *)
(* ------------------------------------------------------------------ *)

(* The compiled type stays transparent: the [auto] planner below
   reuses this adapter's compile/stats/session plumbing while keeping
   a typed handle on the engine for its demotion monitor. *)
module Hybrid_engine : Engine_sig.S with type compiled = Hybrid.t = struct
  let name = "hybrid"

  let doc = "lazy-DFA configuration cache over iMFAnt (RE2-style)"

  type compiled = Hybrid.t

  let compile z = Hybrid.compile z

  let of_tables = Some (fun tb -> Hybrid.of_tables tb)

  let to_tables c = Some (Imfant.export_tables (Hybrid.imfant c))

  let mfsa = Hybrid.mfsa

  let run = Hybrid.run

  let count = Hybrid.count

  let count_per_fsa = Hybrid.count_per_fsa

  let stats c =
    let s = Hybrid.stats c in
    let hit_rate =
      if s.Hybrid.steps = 0 then 0.
      else float_of_int s.Hybrid.hits /. float_of_int s.Hybrid.steps
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"States in the compiled automaton"
        "mfsa_engine_states" (Hybrid.mfsa c).Mfsa.n_states;
      Snapshot.counter_i ~labels ~help:"Bytes stepped through the lazy DFA"
        "mfsa_engine_steps_total" s.Hybrid.steps;
      Snapshot.counter_i ~labels ~help:"Memoised steps"
        "mfsa_engine_cache_hits_total" s.Hybrid.hits;
      Snapshot.counter_i ~labels ~help:"Steps taking the NFA fallback path"
        "mfsa_engine_cache_misses_total" s.Hybrid.misses;
      Snapshot.gauge ~labels ~help:"hits / steps since the last reset"
        "mfsa_engine_cache_hit_ratio" hit_rate;
      Snapshot.gauge_i ~labels ~help:"Configurations resident in the cache"
        "mfsa_engine_cache_resident_configs" s.Hybrid.resident_configs;
      Snapshot.counter_i ~labels ~help:"Configurations interned"
        "mfsa_engine_cache_interned_total" s.Hybrid.configs_interned;
      Snapshot.counter_i ~labels ~help:"Full cache flushes"
        "mfsa_engine_cache_flushes_total" s.Hybrid.flushes;
      Snapshot.counter_i ~labels
        ~help:"Configurations individually evicted by the clock"
        "mfsa_engine_cache_evictions_total" s.Hybrid.evictions;
      Snapshot.gauge_i ~labels
        ~help:"Current adaptive cache capacity in rows"
        "mfsa_engine_cache_capacity" s.Hybrid.capacity;
      Snapshot.counter_i ~labels
        ~help:"Adaptive capacity doublings under churn"
        "mfsa_engine_cache_grows_total" s.Hybrid.grows;
      Snapshot.counter_i ~labels
        ~help:"Adaptive capacity halvings on a hot cache"
        "mfsa_engine_cache_shrinks_total" s.Hybrid.shrinks;
      Snapshot.counter_i ~labels
        ~help:"Demotions to pure NFA stepping (planner escape hatch)"
        "mfsa_engine_demotions_total" s.Hybrid.demotions;
      Snapshot.gauge_i ~labels ~help:"Approximate cache footprint"
        "mfsa_engine_cache_bytes" s.Hybrid.cache_bytes;
      Snapshot.counter_i ~labels
        ~help:"2-byte strides answered by a pair-table cell"
        "mfsa_engine_cache_pair_hits_total" s.Hybrid.pair_hits;
      Snapshot.gauge_i ~labels
        ~help:"Byte-equivalence classes indexing the transition tables"
        "mfsa_engine_class_count" (Hybrid.n_classes c);
      Snapshot.counter_i ~labels
        ~help:"Input bytes skipped by the literal prefilter"
        "mfsa_engine_prefilter_skipped_bytes_total" s.Hybrid.skipped_bytes;
    ]

  (* Metric reproducibility (Engine_sig contract): the counters AND
     the cache state they describe go back to the freshly-compiled
     state — cache dropped, capacity back to base, demotion lifted —
     so reset + run replays the cold-cache metric trajectory. *)
  let reset_stats c =
    Hybrid.promote c;
    Hybrid.flush c;
    Hybrid.reset_stats c

  (* The measurement-window reset: counters to zero, cache (and
     capacity, and demotion state) left warm. *)
  let reset_counters c = Hybrid.reset_stats c

  type session = Hybrid.session

  let session = Hybrid.session

  let feed = Hybrid.feed

  let finish = Hybrid.finish

  let reset = Hybrid.reset

  let position = Hybrid.position
end

(* ------------------------------------------------------------------ *)
(* infant — the per-rule baseline on the projected FSAs                *)
(* ------------------------------------------------------------------ *)

module Infant_base = struct
  let name = "infant"

  let doc = "per-rule iNFAnt baseline on the FSAs projected out of the MFSA"

  type compiled = { z : Mfsa.t; engines : Infant.t array }

  let compile z =
    { z; engines = Array.init z.Mfsa.n_fsas (fun j -> Infant.compile (Mfsa.project z j)) }

  (* The per-rule baselines derive per-projection tables an artifact
     does not carry — no table loader. *)
  let of_tables = None

  let to_tables _ = None

  let mfsa c = c.z

  let run c input =
    let acc = ref [] in
    Array.iteri
      (fun j eng ->
        List.iter
          (fun end_pos -> acc := { fsa = j; end_pos } :: !acc)
          (Infant.run eng input))
      c.engines;
    sort_events !acc

  let count c input =
    Array.fold_left (fun acc eng -> acc + Infant.count eng input) 0 c.engines

  let count_per_fsa c input = Array.map (fun eng -> Infant.count eng input) c.engines

  let stats c =
    let states =
      Array.fold_left (fun acc eng -> acc + Infant.n_states eng) 0 c.engines
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"Projected per-rule automata"
        "mfsa_engine_rules" (Array.length c.engines);
      Snapshot.gauge_i ~labels ~help:"States across the projected automata"
        "mfsa_engine_states" states;
      Snapshot.gauge_i ~labels
        ~help:"Byte-equivalence classes indexing the transition tables"
        "mfsa_engine_class_count"
        (Array.fold_left (fun acc eng -> max acc (Infant.n_classes eng)) 0
           c.engines);
    ]

  let reset_stats _ = ()

  let reset_counters = reset_stats
end

module Infant_engine = Buffered_session (Infant_base)

(* ------------------------------------------------------------------ *)
(* dfa — per-rule scanning DFAs                                        *)
(* ------------------------------------------------------------------ *)

module Dfa_base = struct
  let name = "dfa"

  let doc = "per-rule scanning DFAs (subset construction + Hopcroft)"

  type compiled = { z : Mfsa.t; engines : Dfa_engine.t array }

  let compile z =
    { z; engines = Array.init z.Mfsa.n_fsas (fun j -> Dfa_engine.compile (Mfsa.project z j)) }

  let of_tables = None

  let to_tables _ = None

  let mfsa c = c.z

  let run c input =
    let acc = ref [] in
    Array.iteri
      (fun j eng ->
        List.iter
          (fun end_pos -> acc := { fsa = j; end_pos } :: !acc)
          (Dfa_engine.run eng input))
      c.engines;
    sort_events !acc

  let count c input =
    Array.fold_left (fun acc eng -> acc + Dfa_engine.count eng input) 0 c.engines

  let count_per_fsa c input =
    Array.map (fun eng -> Dfa_engine.count eng input) c.engines

  let stats c =
    let states =
      Array.fold_left (fun acc eng -> acc + Dfa_engine.n_states eng) 0 c.engines
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"Projected per-rule automata"
        "mfsa_engine_rules" (Array.length c.engines);
      Snapshot.gauge_i ~labels ~help:"DFA states across the projected rules"
        "mfsa_engine_states" states;
      Snapshot.gauge_i ~labels
        ~help:"Class-indexed transition table cells resident"
        "mfsa_engine_table_cells"
        (Array.fold_left (fun acc eng -> acc + Dfa_engine.table_cells eng) 0
           c.engines);
      Snapshot.gauge_i ~labels
        ~help:"Byte-equivalence classes indexing the transition tables"
        "mfsa_engine_class_count"
        (Array.fold_left (fun acc eng -> max acc (Dfa_engine.n_classes eng)) 0
           c.engines);
    ]

  let reset_stats _ = ()

  let reset_counters = reset_stats
end

module Dfa_engine_engine = Buffered_session (Dfa_base)

(* ------------------------------------------------------------------ *)
(* decomposed — literal pre-filter + confirmation                      *)
(* ------------------------------------------------------------------ *)

module Decomposed_base = struct
  let name = "decomposed"

  let doc = "literal pre-filter + FSA confirmation (Hyperscan-style)"

  type compiled = { z : Mfsa.t; d : Decomposed.t }

  let compile z =
    { z; d = Decomposed.compile (Array.init z.Mfsa.n_fsas (Mfsa.project z)) }

  let of_tables = None

  let to_tables _ = None

  let mfsa c = c.z

  let run c input =
    List.map
      (fun e -> { fsa = e.Decomposed.rule; end_pos = e.Decomposed.end_pos })
      (Decomposed.run c.d input)

  let count c input = Decomposed.count c.d input

  let count_per_fsa c input =
    let counts = Array.make c.z.Mfsa.n_fsas 0 in
    List.iter
      (fun e -> counts.(e.Decomposed.rule) <- counts.(e.Decomposed.rule) + 1)
      (Decomposed.run c.d input);
    counts

  let stats c =
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels
        ~help:"Rules handled through the literal pre-filter"
        "mfsa_engine_rules_prefiltered" (Decomposed.n_prefiltered c.d);
      Snapshot.gauge_i ~labels ~help:"Rules scanned conventionally"
        "mfsa_engine_rules_fallback" (Decomposed.n_fallback c.d);
    ]

  let reset_stats _ = ()

  let reset_counters = reset_stats
end

module Decomposed_engine = Buffered_session (Decomposed_base)

(* ------------------------------------------------------------------ *)
(* ac — pure Aho–Corasick on literal-only rulesets                     *)
(* ------------------------------------------------------------------ *)

(* A restricted engine: it compiles only rulesets in which every
   rule's language is a finite set of literals ({!Prefilter.exact_strings}),
   and rejects anything else at compile time. On those rulesets it is
   the paper's string-matching special case made concrete — one
   goto/fail automaton, one table lookup per byte — and serves as the
   speed-of-light baseline the merged-automaton engines are measured
   against. Being restricted, it is resolvable and registerable like
   any engine but excluded from {!general_names}, which is what the
   cross-engine experiments iterate. *)
module Ac_engine : Engine_sig.S = struct
  module Parser = Mfsa_frontend.Parser
  module Ast = Mfsa_frontend.Ast

  let name = "ac"

  let doc =
    "Aho\xe2\x80\x93Corasick on literal-only rulesets (restricted: every rule \
     must denote a finite literal set)"

  type compiled = {
    z : Mfsa.t;
    ac : Aho_corasick.t option;  (* None when no rule has a literal *)
    owner : int array;  (* literal id -> FSA *)
    lens : int array;  (* literal id -> byte length *)
  }

  let compile z =
    let lits = ref [] in
    let n = z.Mfsa.n_fsas in
    for j = n - 1 downto 0 do
      match Parser.parse z.Mfsa.patterns.(j) with
      | Error _ ->
          invalid_arg
            (Printf.sprintf "ac: rule %d does not re-parse: %S" j
               z.Mfsa.patterns.(j))
      | Ok rule -> (
          match Prefilter.exact_strings rule.Ast.ast with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "ac: rule %d (%S) is not a finite literal set — use a \
                    general engine"
                   j z.Mfsa.patterns.(j))
          | Some l ->
              (* Engines report non-empty matches only: the empty
                 literal can never produce one. *)
              List.iter
                (fun s -> if String.length s > 0 then lits := (s, j) :: !lits)
                l)
    done;
    let lits = Array.of_list !lits in
    {
      z;
      ac =
        (if Array.length lits = 0 then None
         else Some (Aho_corasick.build (Array.map fst lits)));
      owner = Array.map snd lits;
      lens = Array.map (fun (s, _) -> String.length s) lits;
    }

  (* The stored table bundle has no per-rule literal ownership and the
     rules may not be literal sets anyway. *)
  let of_tables = None

  let to_tables _ = None

  let mfsa c = c.z

  (* Occurrence -> match event, applying the per-FSA anchors and the
     one-report-per-(FSA, end) convention shared by every engine. *)
  let scan c input ~on_match =
    match c.ac with
    | None -> ()
    | Some ac ->
        let z = c.z in
        let len = String.length input in
        let last = Array.make z.Mfsa.n_fsas (-1) in
        ignore
          (Aho_corasick.scan_from ac ~state:Aho_corasick.start_state input
             ~on_match:(fun id e ->
               let j = c.owner.(id) in
               if
                 last.(j) <> e
                 && ((not z.Mfsa.anchored_start.(j)) || e = c.lens.(id))
                 && ((not z.Mfsa.anchored_end.(j)) || e = len)
               then begin
                 last.(j) <- e;
                 on_match j e
               end))

  let run c input =
    let acc = ref [] in
    scan c input ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc);
    sort_events !acc

  let count c input =
    let n = ref 0 in
    scan c input ~on_match:(fun _ _ -> incr n);
    !n

  let count_per_fsa c input =
    let counts = Array.make c.z.Mfsa.n_fsas 0 in
    scan c input ~on_match:(fun j _ -> counts.(j) <- counts.(j) + 1);
    counts

  let stats c =
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"Rules compiled to literal sets"
        "mfsa_engine_rules" c.z.Mfsa.n_fsas;
      Snapshot.gauge_i ~labels ~help:"Literals in the Aho\xe2\x80\x93Corasick automaton"
        "mfsa_engine_literals" (Array.length c.owner);
      Snapshot.gauge_i ~labels ~help:"Aho\xe2\x80\x93Corasick trie states"
        "mfsa_engine_states"
        (match c.ac with None -> 1 | Some ac -> Aho_corasick.n_states ac);
    ]

  let reset_stats _ = ()

  let reset_counters = reset_stats

  (* Streaming is native: the scanner state carries across chunks, so
     literals straddling chunk boundaries are found without buffering
     the stream. *)
  type session = {
    c : compiled;
    mutable state : int;
    mutable pos : int;  (* stream offset of the next byte *)
    mutable last : int array;  (* per-FSA last reported global end *)
    mutable pending_end : int list;
        (* end-anchored FSAs matched exactly at [pos] *)
  }

  let session c =
    {
      c;
      state = Aho_corasick.start_state;
      pos = 0;
      last = Array.make c.z.Mfsa.n_fsas (-1);
      pending_end = [];
    }

  let feed s chunk =
    let c = s.c in
    let z = c.z in
    let len = String.length chunk in
    if len > 0 then s.pending_end <- [];
    let acc = ref [] in
    (match c.ac with
    | None -> ()
    | Some ac ->
        s.state <-
          Aho_corasick.scan_from ac ~state:s.state chunk ~on_match:(fun id e ->
              let j = c.owner.(id) in
              let ge = s.pos + e in
              if
                s.last.(j) <> ge
                && ((not z.Mfsa.anchored_start.(j)) || ge = c.lens.(id))
              then
                if z.Mfsa.anchored_end.(j) then begin
                  (* Valid only if the stream ends exactly here — keep
                     it pending while this chunk's remainder can still
                     invalidate it. *)
                  if e = len then begin
                    s.last.(j) <- ge;
                    s.pending_end <- j :: s.pending_end
                  end
                end
                else begin
                  s.last.(j) <- ge;
                  acc := { fsa = j; end_pos = ge } :: !acc
                end));
    s.pos <- s.pos + len;
    sort_events !acc

  let finish s =
    List.sort_uniq Int.compare s.pending_end
    |> List.map (fun j -> { fsa = j; end_pos = s.pos })

  let reset s =
    s.state <- Aho_corasick.start_state;
    s.pos <- 0;
    Array.fill s.last 0 (Array.length s.last) (-1);
    s.pending_end <- []

  let position s = s.pos
end

(* ------------------------------------------------------------------ *)
(* auto — the planner meta-engine                                      *)
(* ------------------------------------------------------------------ *)

(* [auto] plans a concrete engine per ruleset from the static features
   {!Planner} computes at compile time, then delegates everything to
   the planned engine's adapter. When the plan is [hybrid] it keeps a
   typed handle on the engine and watches the windowed cache hit rate
   after every batch call and chunk: sustained churn demotes the
   hybrid to pure NFA stepping ({!Hybrid.demote} — operationally
   iMFAnt, sessions keep their state). Stats are the inner engine's
   series relabelled [engine="auto"], plus the planner's own series
   (what was planned, what is active, and the features that decided). *)
module Auto_engine : Engine_sig.S = struct
  let name = "auto"

  let doc =
    "planner meta-engine: picks imfant/hybrid/dfa per ruleset from static \
     features; a churning hybrid demotes to iMFAnt mid-stream"

  type compiled = {
    packed : Engine_sig.t;
    choice : string;  (* the planned engine's registry name *)
    feats : Planner.features;
    hy : Hybrid.t option;  (* the typed handle when the plan was hybrid *)
    mutable mark_steps : int;  (* monitor-window marks *)
    mutable mark_hits : int;
  }

  let wrap feats choice packed hy =
    { packed; choice; feats; hy; mark_steps = 0; mark_hits = 0 }

  let compile z =
    let feats = Planner.features_of_mfsa z in
    match Planner.choose feats with
    | "hybrid" ->
        let h = Hybrid_engine.compile z in
        wrap feats "hybrid" (Engine_sig.pack (module Hybrid_engine) h) (Some h)
    | "dfa" ->
        wrap feats "dfa"
          (Engine_sig.pack
             (module Dfa_engine_engine)
             (Dfa_engine_engine.compile z))
          None
    | _ ->
        wrap feats "imfant"
          (Engine_sig.pack (module Imfant_engine) (Imfant_engine.compile z))
          None

  let of_tables =
    Some
      (fun tb ->
        let feats = Planner.features_of_tables tb in
        match Planner.choose_tables feats with
        | "hybrid" ->
            let h = Hybrid.of_tables tb in
            wrap feats "hybrid"
              (Engine_sig.pack (module Hybrid_engine) h)
              (Some h)
        | _ ->
            let load =
              match Imfant_engine.of_tables with
              | Some load -> load
              | None -> assert false
            in
            wrap feats "imfant"
              (Engine_sig.pack (module Imfant_engine) (load tb))
              None)

  let to_tables c = Engine_sig.to_tables c.packed

  let mfsa c = Engine_sig.mfsa c.packed

  (* The online escape hatch: close any elapsed monitoring window and
     demote on sustained churn. O(1) per call — two counter reads. *)
  let monitor c =
    match c.hy with
    | None -> ()
    | Some h ->
        if not (Hybrid.demoted h) then begin
          let steps = Hybrid.steps_total h in
          let w = steps - c.mark_steps in
          if w >= Planner.demote_window then begin
            let hits = Hybrid.hits_total h in
            let rate = float_of_int (hits - c.mark_hits) /. float_of_int w in
            if rate < Planner.demote_below_rate then Hybrid.demote h;
            c.mark_steps <- steps;
            c.mark_hits <- hits
          end
        end

  let run c input =
    let evs = Engine_sig.run c.packed input in
    monitor c;
    evs

  let count c input =
    let n = Engine_sig.count c.packed input in
    monitor c;
    n

  let count_per_fsa c input =
    let a = Engine_sig.count_per_fsa c.packed input in
    monitor c;
    a

  let active c =
    match c.hy with
    | Some h when Hybrid.demoted h -> "imfant"
    | _ -> c.choice

  let stats c =
    let inner =
      Snapshot.with_labels
        [ ("engine", name) ]
        (Snapshot.without_label "engine" (Engine_sig.stats c.packed))
    in
    let labels = [ ("engine", name) ] in
    Snapshot.merge
      [
        inner;
        [
          Snapshot.gauge_i
            ~labels:(labels @ [ ("planned", c.choice); ("active", active c) ])
            ~help:
              "Always 1; the labels carry the planner's static choice and \
               the engine actually running (they differ after a demotion)"
            "mfsa_engine_planner_choice" 1;
          Snapshot.gauge ~labels
            ~help:"Fraction of rules with a usable required literal prefix"
            "mfsa_engine_planner_literal_share"
            c.feats.Planner.f_literal_share;
          Snapshot.gauge ~labels
            ~help:"Mean |bel(t)| / n_fsas over the merged transitions"
            "mfsa_engine_planner_activation_density" c.feats.Planner.f_density;
          Snapshot.gauge_i ~labels
            ~help:"1 when the Aho\xe2\x80\x93Corasick literal prefilter engages"
            "mfsa_engine_planner_prefilter"
            (if c.feats.Planner.f_prefilter then 1 else 0);
        ];
      ]

  let reset_stats c =
    (* The inner reset lifts any demotion (the hybrid adapter
       promotes), so the fresh-compile trajectory — including the
       planner series — replays exactly. *)
    Engine_sig.reset_stats c.packed;
    c.mark_steps <- 0;
    c.mark_hits <- 0

  let reset_counters c =
    Engine_sig.reset_counters c.packed;
    c.mark_steps <- 0;
    c.mark_hits <- 0

  type session = { c : compiled; s : Engine_sig.session }

  let session c = { c; s = Engine_sig.session c.packed }

  let feed s chunk =
    let evs = Engine_sig.feed s.s chunk in
    monitor s.c;
    evs

  let finish s = Engine_sig.finish s.s

  let reset s = Engine_sig.reset s.s

  let position s = Engine_sig.position s.s
end

(* ------------------------------------------------------------------ *)
(* The table                                                           *)
(* ------------------------------------------------------------------ *)

let table : (string, (module Engine_sig.S)) Hashtbl.t = Hashtbl.create 8

let register (module E : Engine_sig.S) = Hashtbl.replace table E.name (module E : Engine_sig.S)

(* Restricted engines compile only a subset of rulesets (they raise
   on the rest), so the cross-engine experiments must not iterate
   them blindly; they stay resolvable and help-listed. *)
let restricted : (string, unit) Hashtbl.t = Hashtbl.create 2

let register_restricted (module E : Engine_sig.S) =
  register (module E);
  Hashtbl.replace restricted E.name ()

let () =
  List.iter register
    [
      (module Imfant_engine);
      (module Hybrid_engine);
      (module Infant_engine);
      (module Dfa_engine_engine);
      (module Decomposed_engine);
      (module Auto_engine);
    ];
  register_restricted (module Ac_engine)

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

let general_names () =
  List.filter (fun n -> not (Hashtbl.mem restricted n)) (names ())

let unknown_message name =
  Printf.sprintf
    "unknown engine %S (registered: %s; any name can be wrapped as \
     faulty{seed=..,fail_every=..}:<engine> for fault injection, and \
     imfant/hybrid as sfa{domains=..,threshold=..}:<engine> for \
     intra-input parallelism)"
    name
    (String.concat ", " (names ()))

(* Name resolution: exact table entries win; otherwise the name is
   tried against the wrapper grammars — [faulty{...}:<inner>] recurses
   on the inner name so wrappers nest; [sfa{...}:<inner>] restricts
   its inner to the table-shaped engines its chunk primitives exist
   for. Each resolution of a wrapper spec builds a fresh first-class
   module closed over its config — stateless until compiled, so this
   is cheap. *)
let sfa_inners = [ "imfant"; "hybrid" ]

let rec resolve name =
  match Hashtbl.find_opt table name with
  | Some m -> Ok m
  | None -> (
      match Sfa.split_spec name with
      | Some (Error msg) -> Error (Printf.sprintf "bad sfa spec %S: %s" name msg)
      | Some (Ok (spec, inner)) ->
          if List.mem inner sfa_inners then Ok (Sfa.make ~name spec ~inner)
          else
            Error
              (Printf.sprintf
                 "bad sfa spec %S: inner engine must be one of %s, got %S"
                 name
                 (String.concat ", " sfa_inners)
                 inner)
      | None -> (
          match Faulty.split_spec name with
          | None -> Error (unknown_message name)
          | Some (Error msg) ->
              Error (Printf.sprintf "bad faulty spec %S: %s" name msg)
          | Some (Ok (cfg, inner)) ->
              Result.map (Faulty.make ~name cfg) (resolve inner)))

let find name = Result.to_option (resolve name)

let rec underlying name =
  match Sfa.split_spec name with
  | Some (Ok (_, inner)) -> underlying inner
  | _ -> (
      match Faulty.split_spec name with
      | Some (Ok (_, inner)) -> underlying inner
      | _ -> name)

(* The bare message, not a "Registry.find_exn:"-prefixed one: the
   CLIs print it verbatim after their own program name. *)
let find_exn name =
  match resolve name with Ok e -> e | Error msg -> invalid_arg msg

let doc name =
  Option.map (fun (module E : Engine_sig.S) -> E.doc) (find name)

let help () =
  (names ()
  |> List.map (fun name ->
         Printf.sprintf "%-12s %s\n" name
           (Option.value ~default:"" (doc name)))
  |> String.concat "")
  ^ "faulty{..}:<engine>  deterministic fault-injection wrapper \
     (seed=, fail_every=, poison_every=, delay_every=, delay_ms=, \
     fail=, poison=, delay=)\n"
  ^ "sfa{..}:<engine>     SFA intra-input parallel wrapper over imfant or \
     hybrid (domains=, threshold= split size in bytes)\n"

let compile_automaton name z =
  match resolve name with
  | Error msg -> Error msg
  | Ok (module E : Engine_sig.S) ->
      Ok (Engine_sig.pack (module E) (E.compile z))

let compile_automaton_exn name z =
  match compile_automaton name z with
  | Ok t -> t
  | Error msg -> invalid_arg ("Registry.compile_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* The unified compile surface                                         *)
(* ------------------------------------------------------------------ *)

let can_load_tables name =
  match resolve name with
  | Error _ -> false
  | Ok (module E : Engine_sig.S) -> E.of_tables <> None

let table_capable_names () = List.filter can_load_tables (names ())

(* The capability error is a user error (they picked an engine and an
   artifact that don't go together), so it gets the same clean
   one-line treatment as an unknown engine name. *)
let no_table_loader name =
  Printf.sprintf
    "engine %S cannot load a compiled artifact (engines with a table \
     loader: %s); recompile from rules instead"
    name
    (String.concat ", " (table_capable_names ()))

let compile_tables name tb =
  match resolve name with
  | Error msg -> Error msg
  | Ok (module E : Engine_sig.S) -> (
      match E.of_tables with
      | None -> Error (no_table_loader name)
      | Some load -> Ok (Engine_sig.pack (module E) (load tb)))

let compile_tables_exn name tb =
  match compile_tables name tb with
  | Ok t -> t
  | Error msg -> invalid_arg ("Registry.compile_exn: " ^ msg)

let compile name source =
  match resolve name with
  | Error msg -> Error msg
  | Ok (module E : Engine_sig.S) -> (
      (* Check the artifact capability before paying for the load: a
         syntactically artifact-shaped source with an incapable engine
         is refused without touching the file. *)
      match source with
      | (Source.Artifact_file _ | Source.Artifact_bytes _)
        when E.of_tables = None ->
          Error (no_table_loader name)
      | _ -> (
          match Source.resolve source with
          | Source.Compiled_automata zs ->
              Ok (List.map (fun z -> Engine_sig.pack (module E) (E.compile z)) zs)
          | Source.Compiled_tables ts -> (
              match E.of_tables with
              | None -> Error (no_table_loader name)
              | Some load ->
                  Ok
                    (List.map
                       (fun tb -> Engine_sig.pack (module E) (load tb))
                       ts))))

let compile_exn name source =
  match compile name source with
  | Ok t -> t
  | Error msg -> invalid_arg ("Registry.compile_exn: " ^ msg)

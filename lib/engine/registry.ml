module Mfsa = Mfsa_model.Mfsa
module Snapshot = Mfsa_obs.Snapshot
open Engine_sig

(* ------------------------------------------------------------------ *)
(* Adapter plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let sort_events =
  List.stable_sort (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.fsa b.fsa)

(* The batch half of an engine, without streaming. *)
module type Base = sig
  val name : string
  val doc : string

  type compiled

  val compile : Mfsa.t -> compiled
  val mfsa : compiled -> Mfsa.t
  val run : compiled -> string -> match_event list
  val count : compiled -> string -> int
  val count_per_fsa : compiled -> string -> int array
  val stats : compiled -> Mfsa_obs.Snapshot.t
  val reset_stats : compiled -> unit
end

(* Streaming for engines without native cross-chunk state: keep the
   whole stream in a buffer and re-run it on every chunk, reporting
   only the events that end inside the new chunk. Correct by prefix
   determinism — a match ending at position p depends only on the
   stream's first p bytes — but quadratic in stream length; the
   native-session engines are the ones to use for streaming
   workloads. End-anchored FSAs are withheld until [finish], when the
   buffer end really is the stream end. *)
module Buffered_session (E : Base) :
  Engine_sig.S with type compiled = E.compiled = struct
  include E

  type session = { c : E.compiled; buf : Buffer.t; mutable pos : int }

  let session c = { c; buf = Buffer.create 256; pos = 0 }

  let feed s chunk =
    Buffer.add_string s.buf chunk;
    let old = s.pos in
    s.pos <- Buffer.length s.buf;
    if s.pos = old then []
    else
      let anchored_end = (E.mfsa s.c).Mfsa.anchored_end in
      List.filter
        (fun e -> e.end_pos > old && not anchored_end.(e.fsa))
        (E.run s.c (Buffer.contents s.buf))

  let finish s =
    let anchored_end = (E.mfsa s.c).Mfsa.anchored_end in
    List.filter
      (fun e -> anchored_end.(e.fsa))
      (E.run s.c (Buffer.contents s.buf))

  let reset s =
    Buffer.clear s.buf;
    s.pos <- 0

  let position s = s.pos
end

(* ------------------------------------------------------------------ *)
(* imfant                                                              *)
(* ------------------------------------------------------------------ *)

module Imfant_engine : Engine_sig.S = struct
  let name = "imfant"

  let doc =
    "transition-centric merged-automaton engine (paper \xc2\xa7V, the default)"

  (* [run] goes through the instrumented path so the Table II
     active-set pressure accumulates behind [stats]; [count] stays on
     the uninstrumented loop — it is the benchmarks' timing entry
     point. *)
  type compiled = {
    im : Imfant.t;
    mutable bytes : int;  (* bytes processed by instrumented runs *)
    mutable runs : int;
    mutable avg_active : float;  (* of the last run *)
    mutable max_active : int;  (* peak across runs *)
  }

  let compile z =
    { im = Imfant.compile z; bytes = 0; runs = 0; avg_active = 0.; max_active = 0 }

  let mfsa c = Imfant.mfsa c.im

  let run c input =
    let events, st = Imfant.run_with_stats c.im input in
    c.bytes <- c.bytes + st.Imfant.positions;
    c.runs <- c.runs + 1;
    c.avg_active <- st.Imfant.avg_active;
    c.max_active <- max c.max_active st.Imfant.max_active;
    events

  let count c input = Imfant.count c.im input

  let count_per_fsa c input = Imfant.count_per_fsa c.im input

  let stats c =
    let z = mfsa c in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"States in the compiled automaton"
        "mfsa_engine_states" z.Mfsa.n_states;
      Snapshot.gauge_i ~labels ~help:"Transitions in the compiled automaton"
        "mfsa_engine_transitions" (Mfsa.n_transitions z);
      Snapshot.counter_i ~labels ~help:"Instrumented runs executed"
        "mfsa_engine_runs_total" c.runs;
      Snapshot.counter_i ~labels ~help:"Input bytes processed by instrumented runs"
        "mfsa_engine_bytes_total" c.bytes;
      Snapshot.gauge ~labels
        ~help:"Mean active FSAs per position of the last run (Table II)"
        "mfsa_engine_active_fsas_avg" c.avg_active;
      Snapshot.gauge_i ~labels
        ~help:"Peak active FSAs per position across runs (Table II)"
        "mfsa_engine_active_fsas_max" c.max_active;
    ]

  let reset_stats c =
    c.bytes <- 0;
    c.runs <- 0;
    c.avg_active <- 0.;
    c.max_active <- 0

  type session = Imfant.session

  let session c = Imfant.session c.im

  let feed = Imfant.feed

  let finish = Imfant.finish

  let reset = Imfant.reset

  let position = Imfant.position
end

(* ------------------------------------------------------------------ *)
(* hybrid                                                              *)
(* ------------------------------------------------------------------ *)

module Hybrid_engine : Engine_sig.S = struct
  let name = "hybrid"

  let doc = "lazy-DFA configuration cache over iMFAnt (RE2-style)"

  type compiled = Hybrid.t

  let compile z = Hybrid.compile z

  let mfsa = Hybrid.mfsa

  let run = Hybrid.run

  let count = Hybrid.count

  let count_per_fsa = Hybrid.count_per_fsa

  let stats c =
    let s = Hybrid.stats c in
    let hit_rate =
      if s.Hybrid.steps = 0 then 0.
      else float_of_int s.Hybrid.hits /. float_of_int s.Hybrid.steps
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"States in the compiled automaton"
        "mfsa_engine_states" (Hybrid.mfsa c).Mfsa.n_states;
      Snapshot.counter_i ~labels ~help:"Bytes stepped through the lazy DFA"
        "mfsa_engine_steps_total" s.Hybrid.steps;
      Snapshot.counter_i ~labels ~help:"Memoised steps"
        "mfsa_engine_cache_hits_total" s.Hybrid.hits;
      Snapshot.counter_i ~labels ~help:"Steps taking the NFA fallback path"
        "mfsa_engine_cache_misses_total" s.Hybrid.misses;
      Snapshot.gauge ~labels ~help:"hits / steps since the last reset"
        "mfsa_engine_cache_hit_ratio" hit_rate;
      Snapshot.gauge_i ~labels ~help:"Configurations resident in the cache"
        "mfsa_engine_cache_resident_configs" s.Hybrid.resident_configs;
      Snapshot.counter_i ~labels ~help:"Configurations interned"
        "mfsa_engine_cache_interned_total" s.Hybrid.configs_interned;
      Snapshot.counter_i ~labels ~help:"Full cache flushes"
        "mfsa_engine_cache_flushes_total" s.Hybrid.flushes;
      Snapshot.gauge_i ~labels ~help:"Approximate cache footprint"
        "mfsa_engine_cache_bytes" s.Hybrid.cache_bytes;
    ]

  (* Metric reproducibility (Engine_sig contract): the counters AND
     the cache state they describe go back to the freshly-compiled
     state, so reset + run replays the cold-cache metric trajectory. *)
  let reset_stats c =
    Hybrid.flush c;
    Hybrid.reset_stats c

  type session = Hybrid.session

  let session = Hybrid.session

  let feed = Hybrid.feed

  let finish = Hybrid.finish

  let reset = Hybrid.reset

  let position = Hybrid.position
end

(* ------------------------------------------------------------------ *)
(* infant — the per-rule baseline on the projected FSAs                *)
(* ------------------------------------------------------------------ *)

module Infant_base = struct
  let name = "infant"

  let doc = "per-rule iNFAnt baseline on the FSAs projected out of the MFSA"

  type compiled = { z : Mfsa.t; engines : Infant.t array }

  let compile z =
    { z; engines = Array.init z.Mfsa.n_fsas (fun j -> Infant.compile (Mfsa.project z j)) }

  let mfsa c = c.z

  let run c input =
    let acc = ref [] in
    Array.iteri
      (fun j eng ->
        List.iter
          (fun end_pos -> acc := { fsa = j; end_pos } :: !acc)
          (Infant.run eng input))
      c.engines;
    sort_events !acc

  let count c input =
    Array.fold_left (fun acc eng -> acc + Infant.count eng input) 0 c.engines

  let count_per_fsa c input = Array.map (fun eng -> Infant.count eng input) c.engines

  let stats c =
    let states =
      Array.fold_left (fun acc eng -> acc + Infant.n_states eng) 0 c.engines
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"Projected per-rule automata"
        "mfsa_engine_rules" (Array.length c.engines);
      Snapshot.gauge_i ~labels ~help:"States across the projected automata"
        "mfsa_engine_states" states;
    ]

  let reset_stats _ = ()
end

module Infant_engine = Buffered_session (Infant_base)

(* ------------------------------------------------------------------ *)
(* dfa — per-rule scanning DFAs                                        *)
(* ------------------------------------------------------------------ *)

module Dfa_base = struct
  let name = "dfa"

  let doc = "per-rule scanning DFAs (subset construction + Hopcroft)"

  type compiled = { z : Mfsa.t; engines : Dfa_engine.t array }

  let compile z =
    { z; engines = Array.init z.Mfsa.n_fsas (fun j -> Dfa_engine.compile (Mfsa.project z j)) }

  let mfsa c = c.z

  let run c input =
    let acc = ref [] in
    Array.iteri
      (fun j eng ->
        List.iter
          (fun end_pos -> acc := { fsa = j; end_pos } :: !acc)
          (Dfa_engine.run eng input))
      c.engines;
    sort_events !acc

  let count c input =
    Array.fold_left (fun acc eng -> acc + Dfa_engine.count eng input) 0 c.engines

  let count_per_fsa c input =
    Array.map (fun eng -> Dfa_engine.count eng input) c.engines

  let stats c =
    let states =
      Array.fold_left (fun acc eng -> acc + Dfa_engine.n_states eng) 0 c.engines
    in
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels ~help:"Projected per-rule automata"
        "mfsa_engine_rules" (Array.length c.engines);
      Snapshot.gauge_i ~labels ~help:"DFA states across the projected rules"
        "mfsa_engine_states" states;
      Snapshot.gauge_i ~labels ~help:"256-way transition table cells"
        "mfsa_engine_table_cells" (states * 256);
    ]

  let reset_stats _ = ()
end

module Dfa_engine_engine = Buffered_session (Dfa_base)

(* ------------------------------------------------------------------ *)
(* decomposed — literal pre-filter + confirmation                      *)
(* ------------------------------------------------------------------ *)

module Decomposed_base = struct
  let name = "decomposed"

  let doc = "literal pre-filter + FSA confirmation (Hyperscan-style)"

  type compiled = { z : Mfsa.t; d : Decomposed.t }

  let compile z =
    { z; d = Decomposed.compile (Array.init z.Mfsa.n_fsas (Mfsa.project z)) }

  let mfsa c = c.z

  let run c input =
    List.map
      (fun e -> { fsa = e.Decomposed.rule; end_pos = e.Decomposed.end_pos })
      (Decomposed.run c.d input)

  let count c input = Decomposed.count c.d input

  let count_per_fsa c input =
    let counts = Array.make c.z.Mfsa.n_fsas 0 in
    List.iter
      (fun e -> counts.(e.Decomposed.rule) <- counts.(e.Decomposed.rule) + 1)
      (Decomposed.run c.d input);
    counts

  let stats c =
    let labels = [ ("engine", name) ] in
    [
      Snapshot.gauge_i ~labels
        ~help:"Rules handled through the literal pre-filter"
        "mfsa_engine_rules_prefiltered" (Decomposed.n_prefiltered c.d);
      Snapshot.gauge_i ~labels ~help:"Rules scanned conventionally"
        "mfsa_engine_rules_fallback" (Decomposed.n_fallback c.d);
    ]

  let reset_stats _ = ()
end

module Decomposed_engine = Buffered_session (Decomposed_base)

(* ------------------------------------------------------------------ *)
(* The table                                                           *)
(* ------------------------------------------------------------------ *)

let table : (string, (module Engine_sig.S)) Hashtbl.t = Hashtbl.create 8

let register (module E : Engine_sig.S) = Hashtbl.replace table E.name (module E : Engine_sig.S)

let () =
  List.iter register
    [
      (module Imfant_engine);
      (module Hybrid_engine);
      (module Infant_engine);
      (module Dfa_engine_engine);
      (module Decomposed_engine);
    ]

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

let unknown_message name =
  Printf.sprintf
    "unknown engine %S (registered: %s; any name can be wrapped as \
     faulty{seed=..,fail_every=..}:<engine> for fault injection)"
    name
    (String.concat ", " (names ()))

(* Name resolution: exact table entries win; otherwise the name is
   tried against the [faulty{...}:<inner>] wrapper grammar, recursing
   on the inner name so wrappers nest. Each resolution of a wrapper
   spec builds a fresh first-class module closed over its config —
   stateless until compiled, so this is cheap. *)
let rec resolve name =
  match Hashtbl.find_opt table name with
  | Some m -> Ok m
  | None -> (
      match Faulty.split_spec name with
      | None -> Error (unknown_message name)
      | Some (Error msg) ->
          Error (Printf.sprintf "bad faulty spec %S: %s" name msg)
      | Some (Ok (cfg, inner)) ->
          Result.map (Faulty.make ~name cfg) (resolve inner))

let find name = Result.to_option (resolve name)

let rec underlying name =
  match Faulty.split_spec name with
  | Some (Ok (_, inner)) -> underlying inner
  | _ -> name

(* The bare message, not a "Registry.find_exn:"-prefixed one: the
   CLIs print it verbatim after their own program name. *)
let find_exn name =
  match resolve name with Ok e -> e | Error msg -> invalid_arg msg

let doc name =
  Option.map (fun (module E : Engine_sig.S) -> E.doc) (find name)

let help () =
  (names ()
  |> List.map (fun name ->
         Printf.sprintf "%-12s %s\n" name
           (Option.value ~default:"" (doc name)))
  |> String.concat "")
  ^ "faulty{..}:<engine>  deterministic fault-injection wrapper \
     (seed=, fail_every=, poison_every=, delay_every=, delay_ms=, \
     fail=, poison=, delay=)\n"

let compile name z =
  match resolve name with
  | Error msg -> Error msg
  | Ok (module E : Engine_sig.S) ->
      Ok (Engine_sig.pack (module E) (E.compile z))

let compile_exn name z =
  match compile name z with
  | Ok t -> t
  | Error msg -> invalid_arg ("Registry.compile_exn: " ^ msg)

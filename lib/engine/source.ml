module Mfsa = Mfsa_model.Mfsa

type t =
  | Rules of string array
  | Rules_file of string
  | Automata of Mfsa.t list
  | Artifact_file of string
  | Artifact_bytes of string

type resolved =
  | Compiled_automata of Mfsa.t list
  | Compiled_tables of Tables.t list

exception Error of string

let () =
  Printexc.register_printer (function
    | Error msg -> Some (Printf.sprintf "Source.Error: %s" msg)
    | _ -> None)

let artifact_magic = "MFSAART\x00"

let is_artifact_string s =
  String.length s >= String.length artifact_magic
  && String.sub s 0 (String.length artifact_magic) = artifact_magic

let is_artifact_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = String.length artifact_magic in
          match really_input_string ic n with
          | s -> s = artifact_magic
          | exception End_of_file -> false)

(* One pattern per line, '#' comments allowed — the shared ruleset
   file format of every CLI. "-" reads stdin. *)
let read_rules_file path =
  let contents =
    if path = "-" then In_channel.input_all stdin
    else
      match open_in_bin path with
      | exception Sys_error msg -> raise (Error msg)
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              (* input_all, not in_channel_length: rule files are
                 often pipes (process substitution, fifos). *)
              try In_channel.input_all ic
              with Sys_error msg -> raise (Error msg))
  in
  contents
  |> String.split_on_char '\n'
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then None else Some l)
  |> Array.of_list

let describe = function
  | Rules r -> Printf.sprintf "%d in-process rule(s)" (Array.length r)
  | Rules_file p -> Printf.sprintf "rules file %s" p
  | Automata zs -> Printf.sprintf "%d in-process automaton(s)" (List.length zs)
  | Artifact_file p -> Printf.sprintf "artifact %s" p
  | Artifact_bytes _ -> "in-memory artifact"

(* The two compilation back ends live above this library (the rule
   pipeline in mfsa.core, the artifact reader in mfsa.artifact), so
   they install themselves here at module-initialisation time. An
   unregistered hook means the executable was linked without the
   provider — a build wiring error, reported as such. *)

let rule_compiler : (string array -> Mfsa.t list) option ref = ref None

let artifact_loader :
    ([ `File of string | `Bytes of string ] -> Tables.t list) option ref =
  ref None

let set_rule_compiler f = rule_compiler := Some f
let set_artifact_loader f = artifact_loader := Some f

let compile_rules rules =
  match !rule_compiler with
  | Some f -> f rules
  | None ->
      raise
        (Error
           "no rule compiler registered (executable not linked against \
            Mfsa_core.Pipeline)")

let load_artifact src =
  match !artifact_loader with
  | Some f -> f src
  | None ->
      raise
        (Error
           "no artifact loader registered (executable not linked against \
            Mfsa_artifact.Artifact)")

let resolve = function
  | Rules rules -> Compiled_automata (compile_rules rules)
  | Rules_file path -> Compiled_automata (compile_rules (read_rules_file path))
  | Automata zs -> Compiled_automata zs
  | Artifact_file path -> Compiled_tables (load_artifact (`File path))
  | Artifact_bytes bytes -> Compiled_tables (load_artifact (`Bytes bytes))

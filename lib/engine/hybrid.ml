module Mfsa = Mfsa_model.Mfsa
module Bitset = Mfsa_util.Bitset

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type stats = {
  steps : int;
  hits : int;
  misses : int;
  configs_interned : int;
  resident_configs : int;
  flushes : int;
  cache_bytes : int;
}

(* A configuration is iMFAnt's entire runtime state at one input
   position: the active states (ascending) with their activation sets
   J(q). States with empty J are not active (Equation 6 popped every
   FSA), so they never appear. *)
type config = { c_states : int array; c_sets : Bitset.t array }

let empty_cfg = { c_states = [||]; c_sets = [||] }

module Key = struct
  type t = config

  let equal a b =
    let n = Array.length a.c_states in
    n = Array.length b.c_states
    &&
    let rec go i =
      i >= n
      || a.c_states.(i) = b.c_states.(i)
         && Bitset.equal a.c_sets.(i) b.c_sets.(i)
         && go (i + 1)
    in
    go 0

  let hash c =
    let h = ref (Array.length c.c_states) in
    Array.iteri
      (fun i q ->
        h := ((!h * 31) + q) land max_int;
        h := ((!h * 31) + Bitset.hash c.c_sets.(i)) land max_int)
      c.c_states;
    !h
end

module Tbl = Hashtbl.Make (Key)

(* One memo row per interned configuration: the successor id and the
   FSAs matching on the edge, per byte. -1 = not computed yet. *)
type row = { cfg : config; next : int array; edge_matches : int array array }

let mk_row cfg =
  { cfg; next = Array.make 256 (-1); edge_matches = Array.make 256 [||] }

(* Row 0 is the position-0 start configuration (inits include the
   start-anchored FSAs); row 1 is the dead configuration (empty,
   reached mid-stream). Both are empty as (state, set) maps but step
   differently, so they get distinct permanent ids; only the dead one
   is registered in the intern table. [seed] rebuilds both after a
   flush, so these two ids are the only ones stable across flushes. *)
let start_id = 0

let dead_id = 1

type t = {
  im : Imfant.t;
  z : Mfsa.t;
  cache_size : int;
  any_end_anchor : bool;
  init_all : Bitset.t array;
  init_unanch : Bitset.t array;
  init_states_all : int array;
      (* States initial for some FSA — fallback sources even when
         inactive (Equation 4: an FSA is pushed when leaving its
         initial state, at any input position). *)
  init_states_unanch : int array;
  csr_off : int array;
  csr_tr : int array;
  tbl : int Tbl.t;
  mutable rows : row array;
  mutable n_rows : int;
  mutable last_edge : int array;
      (* Matches of the edge the latest [step] traversed. *)
  (* Fallback scratch, allocated once per engine. *)
  acc_sets : Bitset.t array;
  acc_stamp : int array;
  active_stamp : int array;
  touched : int array;
  src_scratch : Bitset.t;
  tr_scratch : Bitset.t;
  match_acc : Bitset.t;
  mutable epoch : int;
      (* Bumped by every flush. Row ids > dead_id minted before the
         current epoch index a dropped rows array; sessions compare
         epochs to know when to re-intern their configuration. *)
  mutable gen : int;
  (* Counters. *)
  mutable steps : int;
  mutable hits : int;
  mutable misses : int;
  mutable interned : int;
  mutable flushes : int;
}

let add_row t cfg ~register =
  if t.n_rows = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) t.rows.(0) in
    Array.blit t.rows 0 bigger 0 t.n_rows;
    t.rows <- bigger
  end;
  let id = t.n_rows in
  t.rows.(id) <- mk_row cfg;
  t.n_rows <- id + 1;
  if register then Tbl.replace t.tbl cfg id;
  id

let seed t =
  t.n_rows <- 0;
  ignore (add_row t empty_cfg ~register:false);
  (* start *)
  ignore (add_row t empty_cfg ~register:true)
(* dead *)

let of_imfant ?(cache_size = 4096) im =
  if cache_size < 1 then invalid_arg "Hybrid.of_imfant: cache_size < 1";
  let z = Imfant.mfsa im in
  let init_all, init_unanch = Imfant.init_tables im in
  let csr_off, csr_tr = Imfant.csr im in
  let nonempty inits =
    let acc = ref [] in
    for q = Array.length inits - 1 downto 0 do
      if not (Bitset.is_empty inits.(q)) then acc := q :: !acc
    done;
    Array.of_list !acc
  in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let t =
    {
      im;
      z;
      cache_size;
      any_end_anchor = Array.exists Fun.id z.Mfsa.anchored_end;
      init_all;
      init_unanch;
      init_states_all = nonempty init_all;
      init_states_unanch = nonempty init_unanch;
      csr_off;
      csr_tr;
      tbl = Tbl.create 256;
      rows = Array.make 16 (mk_row empty_cfg);
      n_rows = 0;
      last_edge = [||];
      acc_sets = Array.init n (fun _ -> Bitset.create nf);
      acc_stamp = Array.make n (-1);
      active_stamp = Array.make n (-1);
      touched = Array.make n 0;
      src_scratch = Bitset.create nf;
      tr_scratch = Bitset.create nf;
      match_acc = Bitset.create nf;
      epoch = 0;
      gen = 0;
      steps = 0;
      hits = 0;
      misses = 0;
      interned = 0;
      flushes = 0;
    }
  in
  seed t;
  t

let compile ?cache_size z = of_imfant ?cache_size (Imfant.compile z)

let mfsa t = t.z

let imfant t = t.im

let flush t =
  Tbl.reset t.tbl;
  t.rows <- Array.make 16 (mk_row empty_cfg);
  seed t;
  t.epoch <- t.epoch + 1;
  t.flushes <- t.flushes + 1

let intern t cfg =
  match Tbl.find_opt t.tbl cfg with
  | Some id -> (id, false)
  | None ->
      let full = t.n_rows - 2 >= t.cache_size in
      if full then flush t;
      let id = add_row t cfg ~register:true in
      t.interned <- t.interned + 1;
      (id, full)

(* The NFA step from one explicit configuration: Equations 4–6 over
   the active states' (and initial states') outgoing arcs for byte
   [c], via the CSR — never the full byte-enabled transition list. *)
let fallback t cfg c ~at_start =
  let z = t.z in
  let inits = if at_start then t.init_all else t.init_unanch in
  let init_states =
    if at_start then t.init_states_all else t.init_states_unanch
  in
  let csr_off = t.csr_off and csr_tr = t.csr_tr in
  t.gen <- t.gen + 1;
  let g = t.gen in
  let ntouch = ref 0 in
  let fire q src =
    let base = (q * 256) + c in
    for k = csr_off.(base) to csr_off.(base + 1) - 1 do
      let tr = csr_tr.(k) in
      (* J' = src ∩ bel(t); the move is valid iff J' ≠ ∅. *)
      Bitset.clear t.tr_scratch;
      ignore (Bitset.union_into ~dst:t.tr_scratch src);
      Bitset.inter_into ~dst:t.tr_scratch z.Mfsa.bel.(tr);
      if not (Bitset.is_empty t.tr_scratch) then begin
        let d = z.Mfsa.col.(tr) in
        if t.acc_stamp.(d) <> g then begin
          t.acc_stamp.(d) <- g;
          Bitset.clear t.acc_sets.(d);
          t.touched.(!ntouch) <- d;
          incr ntouch
        end;
        ignore (Bitset.union_into ~dst:t.acc_sets.(d) t.tr_scratch)
      end
    done
  in
  Array.iteri
    (fun i q ->
      t.active_stamp.(q) <- g;
      Bitset.clear t.src_scratch;
      ignore (Bitset.union_into ~dst:t.src_scratch cfg.c_sets.(i));
      ignore (Bitset.union_into ~dst:t.src_scratch inits.(q));
      fire q t.src_scratch)
    cfg.c_states;
  Array.iter
    (fun q -> if t.active_stamp.(q) <> g then fire q inits.(q))
    init_states;
  let states = Array.sub t.touched 0 !ntouch in
  Array.sort Int.compare states;
  Bitset.clear t.match_acc;
  let sets =
    Array.map
      (fun d ->
        let s = Bitset.copy t.acc_sets.(d) in
        (* Equation 5: matches for the FSAs final in d ∩ J'. *)
        Bitset.clear t.tr_scratch;
        ignore (Bitset.union_into ~dst:t.tr_scratch s);
        Bitset.inter_into ~dst:t.tr_scratch z.Mfsa.final_sets.(d);
        ignore (Bitset.union_into ~dst:t.match_acc t.tr_scratch);
        s)
      states
  in
  let matches =
    if Bitset.is_empty t.match_acc then [||]
    else Array.of_list (Bitset.to_list t.match_acc)
  in
  ({ c_states = states; c_sets = sets }, matches)

(* Consume one byte from configuration [cur]: memo lookup, or NFA
   fallback + intern + memoize. Returns the successor id and leaves
   the edge's match set in [t.last_edge]. *)
let step t cur c =
  t.steps <- t.steps + 1;
  let r = t.rows.(cur) in
  let nxt = r.next.(c) in
  if nxt >= 0 then begin
    t.hits <- t.hits + 1;
    t.last_edge <- r.edge_matches.(c);
    nxt
  end
  else begin
    t.misses <- t.misses + 1;
    let cfg', ms = fallback t r.cfg c ~at_start:(cur = start_id) in
    let id, flushed = intern t cfg' in
    (* On flush [r] belongs to the dropped table: skip the memo. *)
    if not flushed then begin
      r.next.(c) <- id;
      r.edge_matches.(c) <- ms
    end;
    t.last_edge <- ms;
    id
  end

let execute t input ~on_match =
  let z = t.z in
  let len = String.length input in
  let cur = ref start_id in
  for i = 0 to len - 1 do
    let c = Char.code (String.unsafe_get input i) in
    cur := step t !cur c;
    let ms = t.last_edge in
    let n = Array.length ms in
    if n > 0 then
      if not t.any_end_anchor then
        for k = 0 to n - 1 do
          on_match ms.(k) (i + 1)
        done
      else
        for k = 0 to n - 1 do
          let j = ms.(k) in
          if (not z.Mfsa.anchored_end.(j)) || i + 1 = len then on_match j (i + 1)
        done
  done

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc);
  List.rev !acc

let count t input =
  let c = ref 0 in
  execute t input ~on_match:(fun _ _ -> incr c);
  !c

let count_per_fsa t input =
  let counts = Array.make t.z.Mfsa.n_fsas 0 in
  execute t input ~on_match:(fun fsa _ -> counts.(fsa) <- counts.(fsa) + 1);
  counts

(* ---------------------------------------------------------- Stats *)

let stats t =
  let word_bytes = 8 in
  let bitset_bytes =
    word_bytes * (((t.z.Mfsa.n_fsas + 61) / 62) + 3)
  in
  let bytes = ref 0 in
  for i = 0 to t.n_rows - 1 do
    let r = t.rows.(i) in
    (* next + edge_matches pointer arrays, row and config headers. *)
    bytes := !bytes + (word_bytes * ((2 * 256) + 8));
    Array.iter
      (fun ms -> bytes := !bytes + (word_bytes * Array.length ms))
      r.edge_matches;
    bytes := !bytes + (word_bytes * Array.length r.cfg.c_states);
    bytes := !bytes + (bitset_bytes * Array.length r.cfg.c_sets)
  done;
  {
    steps = t.steps;
    hits = t.hits;
    misses = t.misses;
    configs_interned = t.interned;
    resident_configs = t.n_rows;
    flushes = t.flushes;
    cache_bytes = !bytes;
  }

let reset_stats t =
  t.steps <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.interned <- 0;
  t.flushes <- 0

(* ------------------------------------------------------- Streaming *)

type session = {
  eng : t;
  mutable cur : int;
  mutable cur_cfg : config;
      (* The configuration [cur] names. Row ids do not survive a
         flush, so the session keeps the (immutable) configuration
         itself as the durable handle and re-interns it when the
         engine's flush epoch has moved. *)
  mutable epoch : int;
      (* Engine epoch [cur] was minted in. *)
  mutable pos : int;
  mutable pending_end : int list;
      (* end-anchored FSAs matched exactly at [pos]; flushed by
         [finish], discarded whenever the stream continues *)
}

let session eng =
  {
    eng;
    cur = start_id;
    cur_cfg = empty_cfg;
    epoch = eng.epoch;
    pos = 0;
    pending_end = [];
  }

let reset s =
  s.cur <- start_id;
  s.cur_cfg <- empty_cfg;
  s.epoch <- s.eng.epoch;
  s.pos <- 0;
  s.pending_end <- []

let position s = s.pos

(* Concurrent sessions share one cache: a flush forced by any of them
   (or by a [run] on the same engine) invalidates every outstanding
   row id except the seeded start/dead pair. Re-intern the session's
   configuration before touching [t.rows] again. The intern may
   itself flush a full cache; the id it returns is always valid in
   the rows array it leaves behind. *)
let revalidate s =
  let t = s.eng in
  if s.epoch <> t.epoch then begin
    if s.cur > dead_id then s.cur <- fst (intern t s.cur_cfg);
    s.epoch <- t.epoch
  end

let feed s chunk =
  let t = s.eng in
  let z = t.z in
  revalidate s;
  let acc = ref [] in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      (* Any continuation invalidates matches that were waiting for
         end-of-stream. *)
      s.pending_end <- [];
      let nxt = step t s.cur c in
      let ms = t.last_edge in
      for k = 0 to Array.length ms - 1 do
        let j = ms.(k) in
        if z.Mfsa.anchored_end.(j) then s.pending_end <- j :: s.pending_end
        else acc := { fsa = j; end_pos = s.pos + 1 } :: !acc
      done;
      s.cur <- nxt;
      s.cur_cfg <- t.rows.(nxt).cfg;
      s.pos <- s.pos + 1)
    chunk;
  (* A miss inside this chunk may have flushed; the ids we minted
     afterwards are current, so resync rather than re-intern. *)
  s.epoch <- t.epoch;
  List.rev !acc

let finish s =
  List.sort Int.compare s.pending_end
  |> List.map (fun j -> { fsa = j; end_pos = s.pos })

module Mfsa = Mfsa_model.Mfsa
module Bitset = Mfsa_util.Bitset

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type eviction = Clock | Flush

type stats = {
  steps : int;
  hits : int;
  misses : int;
  pair_hits : int;
  configs_interned : int;
  resident_configs : int;
  flushes : int;
  evictions : int;
  capacity : int;
  grows : int;
  shrinks : int;
  demotions : int;
  cache_bytes : int;
  skipped_bytes : int;
}

(* A configuration is iMFAnt's entire runtime state at one input
   position: the active states (ascending) with their activation sets
   J(q). States with empty J are not active (Equation 6 popped every
   FSA), so they never appear. *)
type config = { c_states : int array; c_sets : Bitset.t array }

let empty_cfg = { c_states = [||]; c_sets = [||] }

module Key = struct
  type t = config

  let equal a b =
    let n = Array.length a.c_states in
    n = Array.length b.c_states
    &&
    let rec go i =
      i >= n
      || a.c_states.(i) = b.c_states.(i)
         && Bitset.equal a.c_sets.(i) b.c_sets.(i)
         && go (i + 1)
    in
    go 0

  let hash c =
    let h = ref (Array.length c.c_states) in
    Array.iteri
      (fun i q ->
        h := ((!h * 31) + q) land max_int;
        h := ((!h * 31) + Bitset.hash c.c_sets.(i)) land max_int)
      c.c_states;
    !h
end

module Tbl = Hashtbl.Make (Key)

(* One memo row per interned configuration, indexed by byte class: the
   successor id and the FSAs matching on the edge, per class. -1 = not
   computed yet. Successor ids can go stale — clock eviction reuses
   slots in place — so every memoised id is paired with the mint stamp
   the target slot carried when the entry was written ([next_stamp] /
   [next2_stamp]); an entry is live iff the stored stamp still equals
   the slot's current stamp. The pair tables ([next2]/[mid2]/[end2],
   k*k cells) memoise two classes at once for the 2-stride loop; they
   are allocated lazily on a row's first pair step, within a global
   cell budget — rows past the budget simply take two single steps. *)
type row = {
  cfg : config;
  next : int array;
  next_stamp : int array;
  edge_matches : int array array;
  mutable next2 : int array;
  mutable next2_stamp : int array;
  mutable mid2 : int array array;
  mutable end2 : int array array;
}

let mk_row k cfg =
  {
    cfg;
    next = Array.make k (-1);
    next_stamp = Array.make k (-1);
    edge_matches = Array.make k [||];
    next2 = [||];
    next2_stamp = [||];
    mid2 = [||];
    end2 = [||];
  }

(* Row 0 is the position-0 start configuration (inits include the
   start-anchored FSAs); row 1 is the dead configuration (empty,
   reached mid-stream). Both are empty as (state, set) maps but step
   differently, so they get distinct permanent ids; only the dead one
   is registered in the intern table. [seed] rebuilds both after a
   flush; the clock hand never visits slots below 2, so these two ids
   are the only ones stable across both flushes and evictions. *)
let start_id = 0

let dead_id = 1

(* Sentinel a session's [cur] takes while the engine is demoted: the
   memo cache is bypassed, so there is no row id — the session's
   explicit configuration is the whole handle. *)
let bypass_live = -2

(* Pair tables only make sense on small class alphabets (k*k cells per
   row), and their total footprint is capped engine-wide. *)
let stride2_max_classes = 64

let pair_cell_budget = 1 lsl 19

(* Adaptive sizing bands: every [resize_window] steps the engine looks
   at the window's eviction pressure and hit rate. Sustained eviction
   pressure — at least one eviction per [grow_pressure] steps, i.e.
   the working set keeps displacing itself — doubles the live
   capacity up to [max_grow_factor] times the configured base
   regardless of the hit rate (a cache flooding at 0.9 still wastes
   most of its time re-interning; only the hit rate *after* growth
   tells whether growing helped, and [demote] catches the case where
   it never does). A hot cache (high rate, no evictions) halves the
   capacity back toward the base, but only when at most half of it is
   occupied, so shrinking is pure bookkeeping and never evicts a
   resident working set. *)
let resize_window = 4096

let grow_pressure = 64

let shrink_above_rate = 0.95

let max_grow_factor = 8

type t = {
  im : Imfant.t;
  z : Mfsa.t;
  k : int;  (* byte-class count; rows and CSR are class-indexed *)
  class_of : bytes;
  stride2 : bool;
  prefilter : Prefilter.t option;
  base_cache : int;  (* configured capacity; [cap] floats around it *)
  policy : eviction;
  any_end_anchor : bool;
  init_all : Bitset.t array;
  init_unanch : Bitset.t array;
  init_states_all : int array;
      (* States initial for some FSA — fallback sources even when
         inactive (Equation 4: an FSA is pushed when leaving its
         initial state, at any input position). *)
  init_states_unanch : int array;
  csr_off : int array;
  csr_tr : int array;
  tbl : int Tbl.t;
  mutable rows : row array;
  mutable stamps : int array;
      (* Per-slot mint stamp; -1 marks a freed slot. The mint counter
         is monotone across flushes, so stamp equality identifies one
         specific minted row, ever. *)
  mutable refs : Bytes.t;  (* clock reference bits, '\001' = referenced *)
  mutable n_rows : int;
  mutable free : int list;  (* slots freed by a shrink, reused first *)
  mutable n_free : int;
  mutable hand : int;  (* clock hand, sweeps slots [2, n_rows) *)
  mutable cap : int;  (* live capacity in rows, adaptive under Clock *)
  mutable mint : int;
  mutable bypass : bool;
      (* Demoted: the memo cache is out of the loop and every step is
         an NFA fallback from the explicit configuration — plain
         iMFAnt semantics with session state preserved. *)
  mutable last_edge : int array;
      (* Matches of the edge the latest [step] traversed. *)
  mutable last_mid : int array;
      (* Matches of the first edge of the latest [step2]. *)
  mutable pair_cells : int;
      (* Pair-table cells currently allocated, against the budget. *)
  (* Fallback scratch, allocated once per engine. *)
  acc_sets : Bitset.t array;
  acc_stamp : int array;
  active_stamp : int array;
  touched : int array;
  src_scratch : Bitset.t;
  tr_scratch : Bitset.t;
  match_acc : Bitset.t;
  mutable epoch : int;
      (* Bumped by every flush. Row ids > dead_id minted before the
         current epoch index a dropped rows array; sessions compare
         epochs (then per-slot stamps) to know when to re-intern their
         configuration. *)
  mutable gen : int;
  (* Counters. *)
  mutable steps : int;
  mutable hits : int;
  mutable misses : int;
  mutable p_hits : int;
  mutable interned : int;
  mutable flushes : int;
  mutable evictions_c : int;
  mutable grows_c : int;
  mutable shrinks_c : int;
  mutable demotions_c : int;
  mutable skipped : int;
  (* Resize-window marks: counter values at the window's start. *)
  mutable win_steps0 : int;
  mutable win_hits0 : int;
  mutable win_ev0 : int;
}

let add_row t cfg ~register =
  if t.n_rows = Array.length t.rows then begin
    let n = Array.length t.rows in
    let bigger = Array.make (2 * n) t.rows.(0) in
    Array.blit t.rows 0 bigger 0 t.n_rows;
    t.rows <- bigger;
    let stamps = Array.make (2 * n) (-1) in
    Array.blit t.stamps 0 stamps 0 t.n_rows;
    t.stamps <- stamps;
    let refs = Bytes.make (2 * n) '\000' in
    Bytes.blit t.refs 0 refs 0 t.n_rows;
    t.refs <- refs
  end;
  let id = t.n_rows in
  t.rows.(id) <- mk_row t.k cfg;
  t.mint <- t.mint + 1;
  t.stamps.(id) <- t.mint;
  Bytes.set t.refs id '\001';
  t.n_rows <- id + 1;
  if register then Tbl.replace t.tbl cfg id;
  id

let seed t =
  t.n_rows <- 0;
  ignore (add_row t empty_cfg ~register:false);
  (* start *)
  ignore (add_row t empty_cfg ~register:true)
(* dead *)

let of_imfant ?cache_size ?(eviction = Clock) im =
  (* The wrapped engine recorded the tuning in force when it was
     compiled (or the one stored in the tables it was adopted from);
     reading it there — not the current global — keeps artifact-loaded
     engines faithful to their snapshot. *)
  let tuning = Imfant.tuning im in
  let cache_size =
    match cache_size with Some c -> c | None -> tuning.Tuning.cache_size
  in
  if cache_size < 1 then invalid_arg "Hybrid.of_imfant: cache_size < 1";
  let z = Imfant.mfsa im in
  let init_all, init_unanch = Imfant.init_tables im in
  let csr_off, csr_tr = Imfant.csr im in
  let k = Imfant.n_classes im in
  let nonempty inits =
    let acc = ref [] in
    for q = Array.length inits - 1 downto 0 do
      if not (Bitset.is_empty inits.(q)) then acc := q :: !acc
    done;
    Array.of_list !acc
  in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let t =
    {
      im;
      z;
      k;
      class_of = Imfant.class_of im;
      stride2 = tuning.Tuning.stride >= 2 && k <= stride2_max_classes;
      prefilter = Imfant.prefilter im;
      base_cache = cache_size;
      policy = eviction;
      any_end_anchor = Array.exists Fun.id z.Mfsa.anchored_end;
      init_all;
      init_unanch;
      init_states_all = nonempty init_all;
      init_states_unanch = nonempty init_unanch;
      csr_off;
      csr_tr;
      tbl = Tbl.create 256;
      rows = Array.make 16 (mk_row k empty_cfg);
      stamps = Array.make 16 (-1);
      refs = Bytes.make 16 '\000';
      n_rows = 0;
      free = [];
      n_free = 0;
      hand = 2;
      cap = cache_size;
      mint = 0;
      bypass = false;
      last_edge = [||];
      last_mid = [||];
      pair_cells = 0;
      acc_sets = Array.init n (fun _ -> Bitset.create nf);
      acc_stamp = Array.make n (-1);
      active_stamp = Array.make n (-1);
      touched = Array.make n 0;
      src_scratch = Bitset.create nf;
      tr_scratch = Bitset.create nf;
      match_acc = Bitset.create nf;
      epoch = 0;
      gen = 0;
      steps = 0;
      hits = 0;
      misses = 0;
      p_hits = 0;
      interned = 0;
      flushes = 0;
      evictions_c = 0;
      grows_c = 0;
      shrinks_c = 0;
      demotions_c = 0;
      skipped = 0;
      win_steps0 = 0;
      win_hits0 = 0;
      win_ev0 = 0;
    }
  in
  seed t;
  t

let compile ?cache_size ?eviction z =
  of_imfant ?cache_size ?eviction (Imfant.compile z)

(* The pair-class stride tables and the configuration cache are
   populated on demand, so adoption inherits them lazily for free. *)
let of_tables ?cache_size ?eviction tb =
  of_imfant ?cache_size ?eviction (Imfant.of_tables tb)

let mfsa t = t.z

let imfant t = t.im

let flush t =
  Tbl.reset t.tbl;
  t.rows <- Array.make 16 (mk_row t.k empty_cfg);
  t.stamps <- Array.make 16 (-1);
  t.refs <- Bytes.make 16 '\000';
  t.free <- [];
  t.n_free <- 0;
  t.hand <- 2;
  t.pair_cells <- 0;
  t.cap <- t.base_cache;
  seed t;
  t.epoch <- t.epoch + 1;
  t.flushes <- t.flushes + 1

(* ------------------------------------------------- Clock eviction *)

(* Second chance over slots [2, n_rows): a swept row loses its
   reference bit, a row found without one is the victim. Freed slots
   (negative stamp) are invisible to the hand. After two full cycles
   of clearing, the next live row is picked unconditionally — the
   sweep is bounded even when every row is hot. *)
let clock_pick t =
  let rec sweep budget =
    if t.hand < 2 || t.hand >= t.n_rows then t.hand <- 2;
    let v = t.hand in
    t.hand <- t.hand + 1;
    if t.stamps.(v) < 0 then sweep budget
    else if budget <= 0 || Bytes.get t.refs v = '\000' then v
    else begin
      Bytes.set t.refs v '\000';
      sweep (budget - 1)
    end
  in
  sweep (2 * (t.n_rows - 2))

(* Forget the row living in slot [v]: unregister its configuration
   and return its pair cells to the budget. The slot is then either
   reused in place ([install]) or parked on the free list. *)
let evict t v =
  let r = t.rows.(v) in
  Tbl.remove t.tbl r.cfg;
  if Array.length r.next2 > 0 then t.pair_cells <- t.pair_cells - (t.k * t.k);
  t.evictions_c <- t.evictions_c + 1

let install t v cfg =
  t.rows.(v) <- mk_row t.k cfg;
  t.mint <- t.mint + 1;
  t.stamps.(v) <- t.mint;
  Bytes.set t.refs v '\001';
  Tbl.replace t.tbl cfg v;
  v

let free_slot t v =
  evict t v;
  t.rows.(v) <- mk_row t.k empty_cfg;
  t.stamps.(v) <- -1;
  Bytes.set t.refs v '\000';
  t.free <- v :: t.free;
  t.n_free <- t.n_free + 1

let live_rows t = t.n_rows - 2 - t.n_free

let rec shrink_to_cap t =
  if live_rows t > t.cap then begin
    free_slot t (clock_pick t);
    shrink_to_cap t
  end

(* Close a resize window if one has elapsed. Only called on the miss
   path — a workload that never misses never needs more capacity, and
   any real shrink opportunity still shows up through the occasional
   miss. Growth keys on eviction pressure alone: a working set
   marginally over capacity floods the clock at a deceptively high
   hit rate (every pass re-interns the same overflow), so waiting for
   the rate to drop would leave the cache stuck churning. Shrinking
   additionally requires the live rows to fit in half the capacity —
   then halving frees nothing and a resident working set is never
   evicted by its own cache. *)
let maybe_resize t =
  let w = t.steps - t.win_steps0 in
  if w >= resize_window then begin
    let rate = float_of_int (t.hits - t.win_hits0) /. float_of_int w in
    let evs = t.evictions_c - t.win_ev0 in
    let max_cap = max_grow_factor * t.base_cache in
    if evs * grow_pressure >= w && t.cap < max_cap then begin
      t.cap <- min max_cap (2 * t.cap);
      t.grows_c <- t.grows_c + 1
    end
    else if
      rate > shrink_above_rate && evs = 0 && t.cap > t.base_cache
      && live_rows t <= t.cap / 2
    then begin
      t.cap <- max t.base_cache (t.cap / 2);
      t.shrinks_c <- t.shrinks_c + 1;
      shrink_to_cap t
    end;
    t.win_steps0 <- t.steps;
    t.win_hits0 <- t.hits;
    t.win_ev0 <- t.evictions_c
  end

(* Find-or-create the row for [cfg]. Under [Clock] a full cache evicts
   exactly one victim and reuses its slot in place — every other row,
   and every session, survives. Under [Flush] a full cache drops the
   whole table (the pre-eviction behaviour, kept for the equivalence
   property and the ablation benches). The returned id is always
   valid in the rows array the call leaves behind. *)
let intern_id t cfg =
  match Tbl.find_opt t.tbl cfg with
  | Some id ->
      Bytes.set t.refs id '\001';
      id
  | None -> (
      t.interned <- t.interned + 1;
      match t.policy with
      | Flush ->
          if t.n_rows - 2 >= t.cap then flush t;
          add_row t cfg ~register:true
      | Clock ->
          maybe_resize t;
          (* The capacity bounds *live* rows, not allocated slots:
             reusing a freed slot still adds a resident row, so it
             goes through the same gate as growing the arrays —
             otherwise free-list refills after a shrink would let the
             occupancy silently climb past [cap] again. *)
          if live_rows t < t.cap then (
            match t.free with
            | v :: rest ->
                t.free <- rest;
                t.n_free <- t.n_free - 1;
                install t v cfg
            | [] -> add_row t cfg ~register:true)
          else begin
            let v = clock_pick t in
            evict t v;
            install t v cfg
          end)

(* The NFA step from one explicit configuration: Equations 4–6 over
   the active states' (and initial states') outgoing arcs for class
   [c], via the CSR — never the full class-enabled transition list. *)
let fallback t cfg c ~at_start =
  let z = t.z in
  let k = t.k in
  let inits = if at_start then t.init_all else t.init_unanch in
  let init_states =
    if at_start then t.init_states_all else t.init_states_unanch
  in
  let csr_off = t.csr_off and csr_tr = t.csr_tr in
  t.gen <- t.gen + 1;
  let g = t.gen in
  let ntouch = ref 0 in
  let fire q src =
    let base = (q * k) + c in
    for i = csr_off.(base) to csr_off.(base + 1) - 1 do
      let tr = csr_tr.(i) in
      (* J' = src ∩ bel(t); the move is valid iff J' ≠ ∅. *)
      Bitset.clear t.tr_scratch;
      ignore (Bitset.union_into ~dst:t.tr_scratch src);
      Bitset.inter_into ~dst:t.tr_scratch z.Mfsa.bel.(tr);
      if not (Bitset.is_empty t.tr_scratch) then begin
        let d = z.Mfsa.col.(tr) in
        if t.acc_stamp.(d) <> g then begin
          t.acc_stamp.(d) <- g;
          Bitset.clear t.acc_sets.(d);
          t.touched.(!ntouch) <- d;
          incr ntouch
        end;
        ignore (Bitset.union_into ~dst:t.acc_sets.(d) t.tr_scratch)
      end
    done
  in
  Array.iteri
    (fun i q ->
      t.active_stamp.(q) <- g;
      Bitset.clear t.src_scratch;
      ignore (Bitset.union_into ~dst:t.src_scratch cfg.c_sets.(i));
      ignore (Bitset.union_into ~dst:t.src_scratch inits.(q));
      fire q t.src_scratch)
    cfg.c_states;
  Array.iter
    (fun q -> if t.active_stamp.(q) <> g then fire q inits.(q))
    init_states;
  let states = Array.sub t.touched 0 !ntouch in
  Array.sort Int.compare states;
  Bitset.clear t.match_acc;
  let sets =
    Array.map
      (fun d ->
        let s = Bitset.copy t.acc_sets.(d) in
        (* Equation 5: matches for the FSAs final in d ∩ J'. *)
        Bitset.clear t.tr_scratch;
        ignore (Bitset.union_into ~dst:t.tr_scratch s);
        Bitset.inter_into ~dst:t.tr_scratch z.Mfsa.final_sets.(d);
        ignore (Bitset.union_into ~dst:t.match_acc t.tr_scratch);
        s)
      states
  in
  let matches =
    if Bitset.is_empty t.match_acc then [||]
    else Array.of_list (Bitset.to_list t.match_acc)
  in
  ({ c_states = states; c_sets = sets }, matches)

(* Consume one class from configuration [cur]: memo lookup, or NFA
   fallback + intern + memoize. Returns the successor id and leaves
   the edge's match set in [t.last_edge].

   Staleness discipline: the memo hit requires the stored stamp to
   still match the successor slot's stamp (eviction reuses slots in
   place), and the memo write is skipped when the row we stepped from
   is no longer the resident of [cur] — either because the intern
   flushed the whole table (epoch moved; [t.rows.(cur)] may not even
   be in bounds any more, so the epoch test comes first) or because
   clock eviction picked this very row as the victim. *)
let step t cur c =
  t.steps <- t.steps + 1;
  let r = t.rows.(cur) in
  let nxt = r.next.(c) in
  if nxt >= 0 && r.next_stamp.(c) = t.stamps.(nxt) then begin
    t.hits <- t.hits + 1;
    Bytes.set t.refs nxt '\001';
    t.last_edge <- r.edge_matches.(c);
    nxt
  end
  else begin
    t.misses <- t.misses + 1;
    let epoch0 = t.epoch in
    let cfg', ms = fallback t r.cfg c ~at_start:(cur = start_id) in
    let id = intern_id t cfg' in
    if t.epoch = epoch0 && t.rows.(cur) == r then begin
      r.next.(c) <- id;
      r.next_stamp.(c) <- t.stamps.(id);
      r.edge_matches.(c) <- ms
    end;
    t.last_edge <- ms;
    id
  end

(* Consume two classes at once. On a pair-table hit this is one array
   read instead of two row traversals; on a miss it decomposes into
   two single steps and memoises the pair — under the same staleness
   discipline as [step] (stamped successor, write only if the row
   still owns its slot in the same epoch) and only below the pair-cell
   budget. Leaves the first edge's matches in [t.last_mid] and the
   second's in [t.last_edge]. *)
let step2 t cur c1 c2 =
  let r = t.rows.(cur) in
  let k = t.k in
  if Array.length r.next2 = 0 && t.pair_cells + (k * k) <= pair_cell_budget
  then begin
    r.next2 <- Array.make (k * k) (-1);
    r.next2_stamp <- Array.make (k * k) (-1);
    r.mid2 <- Array.make (k * k) [||];
    r.end2 <- Array.make (k * k) [||];
    t.pair_cells <- t.pair_cells + (k * k)
  end;
  let idx = (c1 * k) + c2 in
  let fin2 = if Array.length r.next2 > 0 then r.next2.(idx) else -1 in
  if fin2 >= 0 && r.next2_stamp.(idx) = t.stamps.(fin2) then begin
    t.steps <- t.steps + 2;
    t.hits <- t.hits + 2;
    t.p_hits <- t.p_hits + 1;
    Bytes.set t.refs fin2 '\001';
    t.last_mid <- r.mid2.(idx);
    t.last_edge <- r.end2.(idx);
    fin2
  end
  else begin
    let epoch0 = t.epoch in
    let mid = step t cur c1 in
    let mids = t.last_edge in
    let fin = step t mid c2 in
    let ends = t.last_edge in
    if
      t.epoch = epoch0
      && t.rows.(cur) == r
      && Array.length r.next2 > 0
    then begin
      r.next2.(idx) <- fin;
      r.next2_stamp.(idx) <- t.stamps.(fin);
      r.mid2.(idx) <- mids;
      r.end2.(idx) <- ends
    end;
    t.last_mid <- mids;
    t.last_edge <- ends;
    fin
  end

(* ------------------------------------------------------- Demotion *)

(* Demotion is the planner's escape hatch for sustained churn: stop
   paying for a cache that cannot hold the working set and step the
   NFA directly, iMFAnt-style. Streaming sessions carry their
   configuration explicitly, so they cross both transitions without
   losing position or pending matches. *)
let demote t =
  if not t.bypass then begin
    t.bypass <- true;
    t.demotions_c <- t.demotions_c + 1;
    (* Return the memo's memory; also bumps the epoch, which is what
       tells outstanding sessions their row ids died. *)
    flush t
  end

let promote t = t.bypass <- false

let demoted t = t.bypass

(* One bypass step: explicit configuration in, explicit configuration
   out. Counted as a miss — there is no cache to hit. *)
let bypass_step t cfg c ~at_start =
  t.steps <- t.steps + 1;
  t.misses <- t.misses + 1;
  fallback t cfg c ~at_start

(* ------------------------------------------------------ Execution *)

let execute_bypass t input ~on_match =
  let z = t.z in
  let len = String.length input in
  let class_of = t.class_of in
  let cls i =
    Char.code (Bytes.unsafe_get class_of (Char.code (String.unsafe_get input i)))
  in
  let emit ms pos =
    let n = Array.length ms in
    for j = 0 to n - 1 do
      let f = ms.(j) in
      if (not t.any_end_anchor)
         || (not z.Mfsa.anchored_end.(f))
         || pos = len
      then on_match f pos
    done
  in
  let cands =
    match t.prefilter with Some p -> Prefilter.candidates p input | None -> [||]
  in
  let use_pf = t.prefilter <> None in
  let nc = Array.length cands in
  let ci = ref 0 in
  let cfg = ref empty_cfg in
  let dead = ref false in
  let i = ref 0 in
  while !i < len do
    if use_pf && !dead then begin
      while !ci < nc && cands.(!ci) < !i do incr ci done;
      let target = if !ci < nc then cands.(!ci) else len in
      if target > !i then begin
        t.skipped <- t.skipped + (target - !i);
        i := target
      end
    end;
    if !i < len then begin
      let cfg', ms = bypass_step t !cfg (cls !i) ~at_start:(!i = 0) in
      cfg := cfg';
      dead := Array.length cfg'.c_states = 0;
      emit ms (!i + 1);
      incr i
    end
  done

let execute t input ~on_match =
  if t.bypass then execute_bypass t input ~on_match
  else begin
    let z = t.z in
    let len = String.length input in
    let class_of = t.class_of in
    let cls i =
      Char.code
        (Bytes.unsafe_get class_of (Char.code (String.unsafe_get input i)))
    in
    let emit ms pos =
      let n = Array.length ms in
      if n > 0 then
        if not t.any_end_anchor then
          for j = 0 to n - 1 do
            on_match ms.(j) pos
          done
        else
          for j = 0 to n - 1 do
            let f = ms.(j) in
            if (not z.Mfsa.anchored_end.(f)) || pos = len then on_match f pos
          done
    in
    let cands =
      match t.prefilter with
      | Some p -> Prefilter.candidates p input
      | None -> [||]
    in
    let use_pf = t.prefilter <> None in
    let nc = Array.length cands in
    let ci = ref 0 in
    let cur = ref start_id in
    let i = ref 0 in
    while !i < len do
      (* The dead configuration only leaves through injection, and with
         a prefilter injection can only succeed at literal-candidate
         offsets: everything up to the next candidate is a no-op. *)
      if use_pf && !cur = dead_id then begin
        while !ci < nc && cands.(!ci) < !i do incr ci done;
        let target = if !ci < nc then cands.(!ci) else len in
        if target > !i then begin
          t.skipped <- t.skipped + (target - !i);
          i := target
        end
      end;
      if !i < len then
        if t.stride2 && !i + 1 < len then begin
          let c1 = cls !i and c2 = cls (!i + 1) in
          cur := step2 t !cur c1 c2;
          emit t.last_mid (!i + 1);
          emit t.last_edge (!i + 2);
          i := !i + 2
        end
        else begin
          cur := step t !cur (cls !i);
          emit t.last_edge (!i + 1);
          incr i
        end
    done
  end

(* Chunk-local pass for the SFA decomposition (lib/engine/sfa):
   [execute] restricted to input.[start..stop-1], starting from the
   position-0 configuration when the chunk owns global position 0 and
   from the dead configuration otherwise — exactly the thread set the
   sequential run would build from injections inside the window.
   Prefilter candidates come from the window extended by max_len - 1
   bytes, so a literal straddling the chunk end still injects at its
   in-chunk start. Returns the carry-out configuration after the last
   chunk byte as explicit arrays (the interned row's hash-consed
   bitsets, immutable once built — safe to read from the joining
   domain). *)
let run_chunk t input ~start ~stop ~on_match =
  let z = t.z in
  let len = String.length input in
  let class_of = t.class_of in
  let cls i =
    Char.code
      (Bytes.unsafe_get class_of (Char.code (String.unsafe_get input i)))
  in
  let emit ms pos =
    let n = Array.length ms in
    if n > 0 then
      if not t.any_end_anchor then
        for j = 0 to n - 1 do
          on_match ms.(j) pos
        done
      else
        for j = 0 to n - 1 do
          let f = ms.(j) in
          if (not z.Mfsa.anchored_end.(f)) || pos = len then on_match f pos
        done
  in
  let use_pf = t.prefilter <> None in
  let cands =
    if use_pf then begin
      let p = Option.get t.prefilter in
      let wstop = min len (stop + Prefilter.max_len p - 1) in
      let wcands =
        Prefilter.candidates p (String.sub input start (wstop - start))
      in
      let acc = ref [] in
      for j = Array.length wcands - 1 downto 0 do
        if start + wcands.(j) < stop then acc := (start + wcands.(j)) :: !acc
      done;
      Array.of_list !acc
    end
    else [||]
  in
  let nc = Array.length cands in
  let ci = ref 0 in
  let i = ref start in
  if t.bypass then begin
    let cfg = ref empty_cfg in
    let dead = ref (start > 0) in
    while !i < stop do
      if use_pf && !dead then begin
        while !ci < nc && cands.(!ci) < !i do incr ci done;
        let target = if !ci < nc then cands.(!ci) else stop in
        if target > !i then begin
          t.skipped <- t.skipped + (target - !i);
          i := target
        end
      end;
      if !i < stop then begin
        let cfg', ms = bypass_step t !cfg (cls !i) ~at_start:(!i = 0) in
        cfg := cfg';
        dead := Array.length cfg'.c_states = 0;
        emit ms (!i + 1);
        incr i
      end
    done;
    ((!cfg.c_states, !cfg.c_sets) : Imfant.carry)
  end
  else begin
    let cur = ref (if start = 0 then start_id else dead_id) in
    while !i < stop do
      if use_pf && !cur = dead_id then begin
        while !ci < nc && cands.(!ci) < !i do incr ci done;
        let target = if !ci < nc then cands.(!ci) else stop in
        if target > !i then begin
          t.skipped <- t.skipped + (target - !i);
          i := target
        end
      end;
      if !i < stop then
        if t.stride2 && !i + 1 < stop then begin
          let c1 = cls !i and c2 = cls (!i + 1) in
          cur := step2 t !cur c1 c2;
          emit t.last_mid (!i + 1);
          emit t.last_edge (!i + 2);
          i := !i + 2
        end
        else begin
          cur := step t !cur (cls !i);
          emit t.last_edge (!i + 1);
          incr i
        end
    done;
    let cfg = t.rows.(!cur).cfg in
    ((cfg.c_states, cfg.c_sets) : Imfant.carry)
  end

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc);
  List.rev !acc

let count t input =
  let c = ref 0 in
  execute t input ~on_match:(fun _ _ -> incr c);
  !c

let count_per_fsa t input =
  let counts = Array.make t.z.Mfsa.n_fsas 0 in
  execute t input ~on_match:(fun fsa _ -> counts.(fsa) <- counts.(fsa) + 1);
  counts

(* ---------------------------------------------------------- Stats *)

let n_classes t = t.k

let capacity t = t.cap

(* O(1) reads of the hot counters, for online monitors ([stats] walks
   every resident row to price the cache). *)
let steps_total t = t.steps

let hits_total t = t.hits

let stats t =
  let word_bytes = 8 in
  let bitset_bytes =
    word_bytes * (((t.z.Mfsa.n_fsas + 61) / 62) + 3)
  in
  let bytes = ref 0 in
  for i = 0 to t.n_rows - 1 do
    if t.stamps.(i) >= 0 then begin
      let r = t.rows.(i) in
      (* next + stamps + edge_matches pointer arrays, row and config
         headers. *)
      bytes := !bytes + (word_bytes * ((3 * t.k) + 8));
      Array.iter
        (fun ms -> bytes := !bytes + (word_bytes * Array.length ms))
        r.edge_matches;
      if Array.length r.next2 > 0 then
        bytes := !bytes + (word_bytes * 4 * t.k * t.k);
      bytes := !bytes + (word_bytes * Array.length r.cfg.c_states);
      bytes := !bytes + (bitset_bytes * Array.length r.cfg.c_sets)
    end
  done;
  {
    steps = t.steps;
    hits = t.hits;
    misses = t.misses;
    pair_hits = t.p_hits;
    configs_interned = t.interned;
    resident_configs = t.n_rows - t.n_free;
    flushes = t.flushes;
    evictions = t.evictions_c;
    capacity = t.cap;
    grows = t.grows_c;
    shrinks = t.shrinks_c;
    demotions = t.demotions_c;
    cache_bytes = !bytes;
    skipped_bytes = t.skipped;
  }

let reset_stats t =
  t.steps <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.p_hits <- 0;
  t.interned <- 0;
  t.flushes <- 0;
  t.evictions_c <- 0;
  t.grows_c <- 0;
  t.shrinks_c <- 0;
  t.demotions_c <- 0;
  t.skipped <- 0;
  t.win_steps0 <- 0;
  t.win_hits0 <- 0;
  t.win_ev0 <- 0

(* ------------------------------------------------------- Streaming *)

type session = {
  eng : t;
  mutable cur : int;
  mutable cur_cfg : config;
      (* The configuration [cur] names. Row ids do not survive a flush
         or an eviction of their slot, so the session keeps the
         (immutable) configuration itself as the durable handle and
         re-interns it when the engine has moved on; while the engine
         is demoted this is the whole handle and [cur] holds
         [bypass_live]. *)
  mutable epoch : int;
      (* Engine epoch [cur] was minted in. *)
  mutable stamp : int;
      (* Mint stamp of [cur]'s slot when the session last left the
         engine; a differing stamp means the slot was reused (or
         freed) and [cur_cfg] must be re-interned. *)
  mutable ac_state : int;
      (* Literal-scanner state carried across chunks, so candidate
         detection survives literals straddling chunk boundaries. *)
  mutable pos : int;
  mutable pending_end : int list;
      (* end-anchored FSAs matched exactly at [pos]; flushed by
         [finish], discarded whenever the stream continues *)
}

let session eng =
  {
    eng;
    cur = start_id;
    cur_cfg = empty_cfg;
    epoch = eng.epoch;
    stamp = eng.stamps.(start_id);
    ac_state =
      (match eng.prefilter with
      | Some p -> Prefilter.start_state p
      | None -> 0);
    pos = 0;
    pending_end = [];
  }

let reset s =
  s.cur <- start_id;
  s.cur_cfg <- empty_cfg;
  s.epoch <- s.eng.epoch;
  s.stamp <- s.eng.stamps.(start_id);
  s.ac_state <-
    (match s.eng.prefilter with Some p -> Prefilter.start_state p | None -> 0);
  s.pos <- 0;
  s.pending_end <- []

let position s = s.pos

(* Concurrent sessions share one cache: between this session's feeds,
   any other session (or a [run] on the same engine) may have flushed
   the table, evicted the row this session points at, or demoted the
   engine. Re-validate before touching [t.rows]: the epoch test comes
   first (after a flush [s.cur] may be out of bounds for the fresh
   stamps array), then the per-slot stamp detects in-place eviction.
   The re-intern may itself evict or flush; the id it returns is
   always valid in the rows array it leaves behind. *)
let revalidate s =
  let t = s.eng in
  if t.bypass then begin
    if s.cur > dead_id then s.cur <- bypass_live;
    s.epoch <- t.epoch
  end
  else begin
    if s.cur = bypass_live then begin
      (* Promoted back: configurations of live sessions are nonempty
         (an empty one would have parked on [dead_id]), so this
         re-intern lands on a real row. *)
      s.cur <- intern_id t s.cur_cfg;
      s.epoch <- t.epoch
    end
    else if s.epoch <> t.epoch then begin
      if s.cur > dead_id then s.cur <- intern_id t s.cur_cfg;
      s.epoch <- t.epoch
    end
    else if s.cur > dead_id && t.stamps.(s.cur) <> s.stamp then
      s.cur <- intern_id t s.cur_cfg;
    s.stamp <- t.stamps.(s.cur)
  end

let feed_bypass s chunk =
  let t = s.eng in
  let z = t.z in
  let len = String.length chunk in
  let class_of = t.class_of in
  let cls i =
    Char.code (Bytes.unsafe_get class_of (Char.code (String.unsafe_get chunk i)))
  in
  let acc = ref [] in
  let use_pf = t.prefilter <> None in
  let cands, limit =
    match t.prefilter with
    | None -> ([||], 0)
    | Some p ->
        let c, st = Prefilter.scan_chunk p ~state:s.ac_state chunk in
        s.ac_state <- st;
        (c, len - (Prefilter.max_len p - 1))
  in
  let nc = Array.length cands in
  let ci = ref 0 in
  let i = ref 0 in
  while !i < len do
    if use_pf && s.cur = dead_id then begin
      while !ci < nc && cands.(!ci) < !i do incr ci done;
      let stop = if !ci < nc then min cands.(!ci) limit else limit in
      if stop > !i then begin
        t.skipped <- t.skipped + (stop - !i);
        s.pos <- s.pos + (stop - !i);
        s.pending_end <- [];
        i := stop
      end
    end;
    if !i < len then begin
      s.pending_end <- [];
      let at_start = s.cur = start_id in
      let cfg =
        if s.cur = start_id || s.cur = dead_id then empty_cfg else s.cur_cfg
      in
      let cfg', ms = bypass_step t cfg (cls !i) ~at_start in
      for j = 0 to Array.length ms - 1 do
        let f = ms.(j) in
        if z.Mfsa.anchored_end.(f) then s.pending_end <- f :: s.pending_end
        else acc := { fsa = f; end_pos = s.pos + 1 } :: !acc
      done;
      s.cur_cfg <- cfg';
      s.cur <-
        (if Array.length cfg'.c_states = 0 then dead_id else bypass_live);
      s.pos <- s.pos + 1;
      incr i
    end
  done;
  s.epoch <- t.epoch;
  List.rev !acc

let feed s chunk =
  let t = s.eng in
  revalidate s;
  if t.bypass then feed_bypass s chunk
  else begin
    let z = t.z in
    let len = String.length chunk in
    let class_of = t.class_of in
    let cls i =
      Char.code
        (Bytes.unsafe_get class_of (Char.code (String.unsafe_get chunk i)))
    in
    let acc = ref [] in
    (* Streaming prefilter: scan the chunk (updating the carried
       scanner state), then skip dead stretches up to the next in-chunk
       candidate — but never into the final [max_len - 1] bytes, where
       a literal straddling into the next chunk could still start; the
       engine keeps injection-at-every-byte semantics, so processing
       those tail bytes natively is all the straddle case needs. *)
    let use_pf = t.prefilter <> None in
    let cands, limit =
      match t.prefilter with
      | None -> ([||], 0)
      | Some p ->
          let c, st = Prefilter.scan_chunk p ~state:s.ac_state chunk in
          s.ac_state <- st;
          (c, len - (Prefilter.max_len p - 1))
    in
    let nc = Array.length cands in
    let ci = ref 0 in
    let i = ref 0 in
    while !i < len do
      if use_pf && s.cur = dead_id then begin
        while !ci < nc && cands.(!ci) < !i do incr ci done;
        let stop = if !ci < nc then min cands.(!ci) limit else limit in
        if stop > !i then begin
          t.skipped <- t.skipped + (stop - !i);
          s.pos <- s.pos + (stop - !i);
          s.pending_end <- [];
          i := stop
        end
      end;
      if !i < len then begin
        (* Any continuation invalidates matches that were waiting for
           end-of-stream. *)
        s.pending_end <- [];
        if t.stride2 && !i + 1 < len then begin
          let nxt = step2 t s.cur (cls !i) (cls (!i + 1)) in
          let mids = t.last_mid in
          for j = 0 to Array.length mids - 1 do
            let f = mids.(j) in
            (* An end-anchored match at the pair's first byte is
               immediately invalidated by its second. *)
            if not z.Mfsa.anchored_end.(f) then
              acc := { fsa = f; end_pos = s.pos + 1 } :: !acc
          done;
          let ends = t.last_edge in
          for j = 0 to Array.length ends - 1 do
            let f = ends.(j) in
            if z.Mfsa.anchored_end.(f) then
              s.pending_end <- f :: s.pending_end
            else acc := { fsa = f; end_pos = s.pos + 2 } :: !acc
          done;
          s.cur <- nxt;
          s.cur_cfg <- t.rows.(nxt).cfg;
          s.pos <- s.pos + 2;
          i := !i + 2
        end
        else begin
          let nxt = step t s.cur (cls !i) in
          let ms = t.last_edge in
          for j = 0 to Array.length ms - 1 do
            let f = ms.(j) in
            if z.Mfsa.anchored_end.(f) then
              s.pending_end <- f :: s.pending_end
            else acc := { fsa = f; end_pos = s.pos + 1 } :: !acc
          done;
          s.cur <- nxt;
          s.cur_cfg <- t.rows.(nxt).cfg;
          s.pos <- s.pos + 1;
          incr i
        end
      end
    done;
    (* A miss inside this chunk may have flushed or evicted; the id we
       hold was minted (or revalidated) afterwards, so resync the
       epoch and the slot stamp rather than re-intern. *)
    s.epoch <- t.epoch;
    s.stamp <- t.stamps.(s.cur);
    List.rev !acc
  end

let finish s =
  List.sort Int.compare s.pending_end
  |> List.map (fun j -> { fsa = j; end_pos = s.pos })

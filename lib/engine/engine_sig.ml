type match_event = { fsa : int; end_pos : int }

module type S = sig
  val name : string
  val doc : string

  type compiled

  val compile : Mfsa_model.Mfsa.t -> compiled
  val of_tables : (Tables.t -> compiled) option
  val to_tables : compiled -> Tables.t option
  val mfsa : compiled -> Mfsa_model.Mfsa.t
  val run : compiled -> string -> match_event list
  val count : compiled -> string -> int
  val count_per_fsa : compiled -> string -> int array
  val stats : compiled -> Mfsa_obs.Snapshot.t
  val reset_stats : compiled -> unit
  val reset_counters : compiled -> unit

  type session

  val session : compiled -> session
  val feed : session -> string -> match_event list
  val finish : session -> match_event list
  val reset : session -> unit
  val position : session -> int
end

type t =
  | Packed :
      (module S with type compiled = 'c and type session = 's) * 'c
      -> t

type session =
  | Session :
      (module S with type compiled = 'c and type session = 's) * 's
      -> session

let pack m c = Packed (m, c)

let name (Packed ((module E), _)) = E.name

let mfsa (Packed ((module E), c)) = E.mfsa c

let to_tables (Packed ((module E), c)) = E.to_tables c

let run (Packed ((module E), c)) input = E.run c input

let count (Packed ((module E), c)) input = E.count c input

let count_per_fsa (Packed ((module E), c)) input = E.count_per_fsa c input

let stats (Packed ((module E), c)) = E.stats c

let reset_stats (Packed ((module E), c)) = E.reset_stats c

let reset_counters (Packed ((module E), c)) = E.reset_counters c

let session (Packed ((module E), c)) = Session ((module E), E.session c)

let feed (Session ((module E), s)) chunk = E.feed s chunk

let finish (Session ((module E), s)) = E.finish s

let reset (Session ((module E), s)) = E.reset s

let position (Session ((module E), s)) = E.position s

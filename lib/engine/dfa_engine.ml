module Nfa = Mfsa_automata.Nfa
module Dfa = Mfsa_automata.Dfa
module Stride = Mfsa_automata.Stride
module Charclass = Mfsa_charset.Charclass

type t = {
  n_states : int;
  k : int;  (* byte-class count (256 when compression is tuned off) *)
  class_of : bytes;
  (* Row-major class-indexed table: [next.(q * k + cls)] = δ(q, c)
     for any byte c of class cls — the dense 256-way table folded
     over {!Stride.byte_classes}' equivalence. *)
  next : int array;
  start : int;
  finals : bool array;
  anchored_end : bool;
}

(* Augment an ε-free NFA for unanchored scanning: a fresh start state
   carries an all-bytes self-loop plus copies of the original start's
   outgoing arcs, and is never accepting — so a subset is accepting
   iff a genuine (≥ 1 byte) path reached an original final state. *)
let augment (a : Nfa.t) =
  if a.Nfa.anchored_start then a
  else begin
    let fresh = a.Nfa.n_states in
    let copies =
      Array.to_list a.Nfa.transitions
      |> List.filter_map (fun tr ->
             if tr.Nfa.src = a.Nfa.start then Some { tr with Nfa.src = fresh }
             else None)
    in
    let self = { Nfa.src = fresh; label = Nfa.Cls Charclass.full; dst = fresh } in
    Nfa.create ~n_states:(a.Nfa.n_states + 1)
      ~transitions:(self :: copies @ Array.to_list a.Nfa.transitions)
      ~start:fresh ~finals:(Nfa.final_states a)
      ~anchored_start:a.Nfa.anchored_start ~anchored_end:a.Nfa.anchored_end
      ~pattern:a.Nfa.pattern ()
  end

let compile ?(minimize = true) a =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Dfa_engine.compile: automaton must be ε-free";
  let dfa = Dfa.determinize (augment a) in
  let dfa = if minimize then Dfa.minimize dfa else dfa in
  let n = dfa.Dfa.n_states in
  let class_of, k =
    if (Tuning.get ()).Tuning.classes then begin
      let cls, k = Stride.byte_classes dfa in
      (Bytes.init 256 (fun c -> Char.chr cls.(c)), k)
    end
    else (Bytes.init 256 Char.chr, 256)
  in
  (* One representative byte per class fills the folded table. *)
  let repr = Array.make k 0 in
  for c = 255 downto 0 do
    repr.(Char.code (Bytes.get class_of c)) <- c
  done;
  let next = Array.make (n * k) 0 in
  for q = 0 to n - 1 do
    for cls = 0 to k - 1 do
      next.((q * k) + cls) <- dfa.Dfa.next.((q * 256) + repr.(cls))
    done
  done;
  {
    n_states = n;
    k;
    class_of;
    next;
    start = dfa.Dfa.start;
    finals = Array.copy dfa.Dfa.finals;
    anchored_end = a.Nfa.anchored_end;
  }

let execute t input ~on_match =
  let len = String.length input in
  let k = t.k in
  let class_of = t.class_of in
  let next = t.next in
  let q = ref t.start in
  for i = 0 to len - 1 do
    let cls =
      Char.code (Bytes.unsafe_get class_of (Char.code (String.unsafe_get input i)))
    in
    q := next.((!q * k) + cls);
    if t.finals.(!q) && ((not t.anchored_end) || i = len - 1) then on_match (i + 1)
  done

let run t input =
  let acc = ref [] in
  execute t input ~on_match:(fun e -> acc := e :: !acc);
  List.rev !acc

let count t input =
  let c = ref 0 in
  execute t input ~on_match:(fun _ -> incr c);
  !c

let n_states t = t.n_states

let n_classes t = t.k

let table_cells t = Array.length t.next

module Nfa = Mfsa_automata.Nfa
module Dfa = Mfsa_automata.Dfa
module Charclass = Mfsa_charset.Charclass

type t = {
  dfa : Dfa.t;
  anchored_end : bool;
}

(* Augment an ε-free NFA for unanchored scanning: a fresh start state
   carries an all-bytes self-loop plus copies of the original start's
   outgoing arcs, and is never accepting — so a subset is accepting
   iff a genuine (≥ 1 byte) path reached an original final state. *)
let augment (a : Nfa.t) =
  if a.Nfa.anchored_start then a
  else begin
    let fresh = a.Nfa.n_states in
    let copies =
      Array.to_list a.Nfa.transitions
      |> List.filter_map (fun tr ->
             if tr.Nfa.src = a.Nfa.start then Some { tr with Nfa.src = fresh }
             else None)
    in
    let self = { Nfa.src = fresh; label = Nfa.Cls Charclass.full; dst = fresh } in
    Nfa.create ~n_states:(a.Nfa.n_states + 1)
      ~transitions:(self :: copies @ Array.to_list a.Nfa.transitions)
      ~start:fresh ~finals:(Nfa.final_states a)
      ~anchored_start:a.Nfa.anchored_start ~anchored_end:a.Nfa.anchored_end
      ~pattern:a.Nfa.pattern ()
  end

let compile ?(minimize = true) a =
  if not (Nfa.is_eps_free a) then
    invalid_arg "Dfa_engine.compile: automaton must be ε-free";
  let dfa = Dfa.determinize (augment a) in
  let dfa = if minimize then Dfa.minimize dfa else dfa in
  { dfa; anchored_end = a.Nfa.anchored_end }

let run t input =
  let dfa = t.dfa in
  let len = String.length input in
  let acc = ref [] in
  let q = ref dfa.Dfa.start in
  for i = 0 to len - 1 do
    q := Dfa.step dfa !q input.[i];
    if dfa.Dfa.finals.(!q) && ((not t.anchored_end) || i = len - 1) then
      acc := (i + 1) :: !acc
  done;
  List.rev !acc

let count t input =
  let dfa = t.dfa in
  let len = String.length input in
  let count = ref 0 in
  let q = ref dfa.Dfa.start in
  for i = 0 to len - 1 do
    q := Dfa.step dfa !q input.[i];
    if dfa.Dfa.finals.(!q) && ((not t.anchored_end) || i = len - 1) then incr count
  done;
  !count

let n_states t = t.dfa.Dfa.n_states

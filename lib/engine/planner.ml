module Mfsa = Mfsa_model.Mfsa
module Parser = Mfsa_frontend.Parser
module Ast = Mfsa_frontend.Ast

type features = {
  f_states : int;
  f_fsas : int;
  f_transitions : int;
  f_classes : int;
  f_density : float;
  f_literal_share : float;
  f_prefilter : bool;
}

(* Thresholds (fitted against BENCH_planner.json's features and
   per-engine steady-state throughputs on the six bundled datasets —
   see the planner row of DESIGN.md):

   - The hybrid wins whenever the literal prefilter engages: the memo
     cache then only sees the hot regions, where configurations
     repeat heavily, and the adaptive capacity absorbs the resident
     working set (5–35x over iMFAnt on BRO/DS9/PEN/RG1/TCP). Static
     automaton size does {e not} predict cacheability — PRO's 86
     merged states explode into a ~44k-configuration working set
     while TCP's 119 states stay under 24k and cache fully — so no
     state bound gates the choice; a ruleset whose configurations
     churn past even the grown cache is caught online by the
     [demote] escape hatch instead.
   - Otherwise the per-rule scanning DFAs win as long as there are
     few enough rules that scanning the input once per rule stays
     cheap, and the merged automaton is small enough to determinise
     per projection (PRO).
   - Otherwise the merged transition-centric engine is the safe
     choice: it is never pathological, and [demote] makes the hybrid
     converge to it anyway. *)
let dfa_max_fsas = 64

let dfa_max_states = 4096

let choose f =
  if f.f_prefilter then "hybrid"
  else if f.f_fsas <= dfa_max_fsas && f.f_states <= dfa_max_states then "dfa"
  else "imfant"

(* From a persisted table bundle only table-capable engines can come
   up, so the per-rule DFAs are not an option; everything that would
   plan ["hybrid"] still does, the rest goes to iMFAnt. *)
let choose_tables f = if f.f_prefilter then "hybrid" else "imfant"

(* Online escape hatch: a hybrid whose windowed hit rate stays below
   [demote_below_rate] over [demote_window] steps is churning faster
   than even the adaptively grown cache can absorb — demote it to
   pure NFA stepping (operationally iMFAnt; sessions keep their
   state). *)
let demote_window = 1 lsl 16

let demote_below_rate = 0.5

let literal_features (z : Mfsa.t) =
  let n = z.Mfsa.n_fsas in
  let covered = ref 0 in
  let unanchored_uncovered = ref 0 in
  for j = 0 to n - 1 do
    let has_prefix =
      match Parser.parse z.Mfsa.patterns.(j) with
      | Error _ -> false
      | Ok rule -> Prefilter.prefix_set rule.Ast.ast <> None
    in
    if has_prefix then incr covered
    else if not z.Mfsa.anchored_start.(j) then incr unanchored_uncovered
  done;
  let share = if n = 0 then 0. else float_of_int !covered /. float_of_int n in
  (* The prefilter engages iff every unanchored rule has a usable
     prefix (anchored-start rules can only match at position 0 and do
     not gate it) — the same condition {!Prefilter.analyze} checks,
     without building the scanner. *)
  (share, !unanchored_uncovered = 0)

let density (z : Mfsa.t) =
  let nt = Mfsa.n_transitions z in
  if nt = 0 || z.Mfsa.n_fsas = 0 then 0.
  else begin
    let total = ref 0 in
    Array.iter
      (fun b -> total := !total + Mfsa_util.Bitset.cardinal b)
      z.Mfsa.bel;
    float_of_int !total /. float_of_int (nt * z.Mfsa.n_fsas)
  end

let features_of_mfsa (z : Mfsa.t) =
  let share, pf = literal_features z in
  {
    f_states = z.Mfsa.n_states;
    f_fsas = z.Mfsa.n_fsas;
    f_transitions = Mfsa.n_transitions z;
    f_classes = (Mfsa.classes z).Mfsa.n_classes;
    f_density = density z;
    f_literal_share = share;
    f_prefilter = pf;
  }

let features_of_tables (tb : Tables.t) =
  let z = tb.Tables.z in
  let share, _ = literal_features z in
  {
    f_states = z.Mfsa.n_states;
    f_fsas = z.Mfsa.n_fsas;
    f_transitions = Mfsa.n_transitions z;
    f_classes = tb.Tables.n_classes;
    f_density = density z;
    f_literal_share = share;
    (* The bundle records whether a prefilter was actually built for
       the tuning it was compiled under — more faithful than
       re-deriving from the patterns. *)
    f_prefilter = tb.Tables.prefilter <> None;
  }

(* The engine-ready table bundle: everything an artifact stores beyond
   the automaton itself, and everything a table-capable engine needs
   to come up without re-running its compile-time derivations. *)

module Mfsa = Mfsa_model.Mfsa
module Bitset = Mfsa_util.Bitset

type t = {
  z : Mfsa.t;
  tuning : Tuning.t;
  n_classes : int;
  class_of : bytes;
  trans_by_cls : int array array;
  csr : (int array * int array) option;
  init_unanch : Bitset.t array;
  prefilter : Prefilter.t option;
}

(** Lazy-DFA execution over an MFSA: RE2-style subset construction,
    done configuration by configuration, on demand.

    {!Imfant} is transition-centric: every input byte scans all
    transitions the byte enables and performs bitset algebra per
    transition (Equations 4–6), even when the active configuration is
    tiny and repeats across millions of positions. This engine
    memoizes that work. A {e configuration} is the entire runtime
    state of iMFAnt at one input position — the map from active
    states to their activation sets [J(q)] — represented canonically
    (states ascending, one belonging bitset each) and {e hash-consed}
    so equal configurations share one integer id. For every
    (configuration, byte) pair seen, the successor configuration and
    the set of FSAs that match on that edge are computed once with
    the NFA fallback and cached; from then on, processing that byte
    in that configuration is a table lookup.

    The fallback walks only the {e active} states' outgoing arcs
    through the CSR layout of {!Imfant.csr} — O(active arcs), not
    O(byte-enabled transitions) — so even a cold cache tracks the
    input's real activity. The cache is bounded: when the number of
    interned configurations passes the budget, the whole cache is
    flushed and rebuilt from the current configuration (RE2's
    eviction policy — cheap, and sidesteps LRU bookkeeping on the
    hot path). Rulesets whose configuration space churns faster than
    the cache can hold it degrade to pure NFA simulation plus
    hashing overhead; {!stats} makes that visible, and {!Imfant} is
    the right engine there.

    Matches are reported identically to {!Imfant}: unanchored
    matching, per-FSA [^]/[$] flags honoured, non-empty matches, one
    report per (FSA, end position). Within one end position events
    are ordered by FSA id.

    An engine value owns mutable cache and scratch state: it must not
    be shared across domains (compile one engine per domain — what
    {!Pool} jobs already do). *)

type t

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type stats = {
  steps : int;  (** Input bytes processed since compile. *)
  hits : int;  (** Steps answered by the memo table alone. *)
  misses : int;  (** Steps that ran the NFA fallback. *)
  pair_hits : int;
      (** 2-byte strides answered by a pair-table cell (each also
          counts as two steps and two hits). *)
  configs_interned : int;
      (** Configurations interned since compile, cumulative across
          flushes. *)
  resident_configs : int;
      (** Configurations currently interned (including the two
          built-ins: the position-0 start configuration and the dead
          configuration). *)
  flushes : int;  (** Times the full cache was dropped. *)
  cache_bytes : int;
      (** Approximate resident cache footprint: memo rows, pair
          tables, interned configurations and per-edge match lists. *)
  skipped_bytes : int;
      (** Input bytes the literal prefilter let the engine jump over
          while in the dead configuration. *)
}

val compile : ?cache_size:int -> Mfsa_model.Mfsa.t -> t
(** [cache_size] bounds the number of {e dynamically} interned
    configurations (default 4096); when interning would exceed the
    bound, the whole cache is flushed and rebuilt from scratch
    (RE2-style eviction), so correctness never depends on the bound.
    @raise Invalid_argument if [cache_size < 1]. *)

val of_imfant : ?cache_size:int -> Imfant.t -> t
(** Wrap an already compiled iMFAnt engine, sharing its tables. The
    wrapped engine's recorded {!Imfant.tuning} (not the current global
    tuning) decides whether 2-byte striding is enabled. *)

val of_tables : ?cache_size:int -> Tables.t -> t
(** [of_imfant] over {!Imfant.of_tables}: adopt a persisted table
    bundle in O(size). The lazily built structures — the configuration
    cache and the pair-class stride tables — start empty, exactly as
    after {!compile}. *)

val mfsa : t -> Mfsa_model.Mfsa.t

val imfant : t -> Imfant.t
(** The wrapped transition-centric engine (shares the automaton). *)

val n_classes : t -> int
(** Size of the byte-class alphabet the memo rows are indexed by
    (inherited from the wrapped {!Imfant} engine; 256 when class
    compression was tuned off at compile time). *)

val stats : t -> stats
(** Cumulative cache counters; {!reset_stats} zeroes them without
    touching the cache. Hit rate is [hits / steps]. *)

val reset_stats : t -> unit

val flush : t -> unit
(** Drop every dynamically interned configuration, as if the cache
    bound had just been hit: the next step from any configuration
    takes the NFA fallback path again. Outstanding sessions survive
    (they re-intern their configuration). Counts as a flush in
    {!stats}; combined with {!reset_stats} it returns the engine to
    its freshly-compiled observable state — what the registry
    adapter's [reset_stats] does. *)

val run : t -> string -> match_event list
(** All matches, ordered by end position (ties by FSA id). Equal to
    {!Imfant.run} on the same automaton and input. *)

val count : t -> string -> int

val count_per_fsa : t -> string -> int array

(** {2 Streaming}

    Same contract as {!Imfant.session}: feeding chunks [c1, …, cn]
    then {!finish} equals [run t (c1 ^ … ^ cn)], end positions are
    global stream offsets, end-anchored rules report at {!finish}.
    Sessions share their engine's cache — concurrent sessions on one
    engine are fine within a single domain and make the cache warmer
    for each other. A cache flush forced by one session (or by a
    [run] on the same engine) does not disturb the others: each
    session keeps its current configuration and re-interns it after
    a flush, at the cost of one extra cache insertion. *)

type session

val session : t -> session

val feed : session -> string -> match_event list

val finish : session -> match_event list

val reset : session -> unit

val position : session -> int

(** Lazy-DFA execution over an MFSA: RE2-style subset construction,
    done configuration by configuration, on demand.

    {!Imfant} is transition-centric: every input byte scans all
    transitions the byte enables and performs bitset algebra per
    transition (Equations 4–6), even when the active configuration is
    tiny and repeats across millions of positions. This engine
    memoizes that work. A {e configuration} is the entire runtime
    state of iMFAnt at one input position — the map from active
    states to their activation sets [J(q)] — represented canonically
    (states ascending, one belonging bitset each) and {e hash-consed}
    so equal configurations share one integer id. For every
    (configuration, byte) pair seen, the successor configuration and
    the set of FSAs that match on that edge are computed once with
    the NFA fallback and cached; from then on, processing that byte
    in that configuration is a table lookup.

    The fallback walks only the {e active} states' outgoing arcs
    through the CSR layout of {!Imfant.csr} — O(active arcs), not
    O(byte-enabled transitions) — so even a cold cache tracks the
    input's real activity. The cache is bounded, and under the default
    {!eviction} policy ({!Clock}) a full cache evicts exactly {e one}
    configuration — second-chance over the memo rows, reusing the
    victim's slot in place — instead of dropping the whole table; the
    capacity additionally adapts to observed eviction pressure,
    growing up to 8x the configured size while the working set keeps
    displacing itself and shrinking back only when the cache runs hot
    with at most half its capacity occupied (so a shrink never evicts
    a resident working set). The pre-eviction behaviour (drop everything and
    rebuild — RE2's policy) is kept as {!Flush}, for ablation and for
    the equivalence tests. Rulesets whose configuration space churns
    faster than even the grown cache can hold degrade to pure NFA
    simulation plus hashing overhead; {!stats} makes that visible, and
    {!demote} (the [auto:] planner's escape hatch) turns the engine
    into exactly that NFA simulation without the hashing.

    Matches are reported identically to {!Imfant}: unanchored
    matching, per-FSA [^]/[$] flags honoured, non-empty matches, one
    report per (FSA, end position). Within one end position events
    are ordered by FSA id.

    An engine value owns mutable cache and scratch state: it must not
    be shared across domains (compile one engine per domain — what
    {!Pool} jobs already do). *)

type t

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type eviction =
  | Clock
      (** Incremental second-chance eviction: a full cache picks one
          victim row (unreferenced since the hand last passed) and
          reuses its slot. Memoised successor ids are validated with
          per-slot mint stamps, so a stale pointer into a reused slot
          reads as a miss, never as a wrong answer. Default. *)
  | Flush
      (** Drop the whole table when full and rebuild from the current
          configuration — the pre-eviction policy, kept for ablations
          and equivalence tests. *)

type stats = {
  steps : int;  (** Input bytes processed since compile. *)
  hits : int;  (** Steps answered by the memo table alone. *)
  misses : int;  (** Steps that ran the NFA fallback. *)
  pair_hits : int;
      (** 2-byte strides answered by a pair-table cell (each also
          counts as two steps and two hits). *)
  configs_interned : int;
      (** Configurations interned since compile, cumulative across
          flushes and evictions. *)
  resident_configs : int;
      (** Configurations currently interned (including the two
          built-ins: the position-0 start configuration and the dead
          configuration). *)
  flushes : int;  (** Times the full cache was dropped. *)
  evictions : int;
      (** Individual configurations evicted by the clock (victim
          selection on a full cache, plus rows freed by a shrink). *)
  capacity : int;
      (** Current live capacity in rows. Starts at the configured
          cache size; the adaptive bands move it between 1x and 8x
          that base. A gauge, not a counter. *)
  grows : int;  (** Times the adaptive band doubled the capacity. *)
  shrinks : int;  (** Times the adaptive band halved the capacity. *)
  demotions : int;  (** Times {!demote} engaged the NFA bypass. *)
  cache_bytes : int;
      (** Approximate resident cache footprint: memo rows, pair
          tables, interned configurations and per-edge match lists. *)
  skipped_bytes : int;
      (** Input bytes the literal prefilter let the engine jump over
          while in the dead configuration. *)
}

val compile : ?cache_size:int -> ?eviction:eviction -> Mfsa_model.Mfsa.t -> t
(** [cache_size] bounds the number of {e dynamically} interned
    configurations; it defaults to the {!Tuning.t.cache_size} snapshot
    the wrapped {!Imfant} engine recorded at compile time (so
    [--cache-size] and artifact-stored values flow through without
    every caller threading the parameter). [eviction] selects the
    full-cache policy (default {!Clock}); correctness never depends on
    either knob.
    @raise Invalid_argument if [cache_size < 1]. *)

val of_imfant : ?cache_size:int -> ?eviction:eviction -> Imfant.t -> t
(** Wrap an already compiled iMFAnt engine, sharing its tables. The
    wrapped engine's recorded {!Imfant.tuning} (not the current global
    tuning) decides whether 2-byte striding is enabled and supplies
    the default cache size. *)

val of_tables : ?cache_size:int -> ?eviction:eviction -> Tables.t -> t
(** [of_imfant] over {!Imfant.of_tables}: adopt a persisted table
    bundle in O(size). The lazily built structures — the configuration
    cache and the pair-class stride tables — start empty, exactly as
    after {!compile}. *)

val mfsa : t -> Mfsa_model.Mfsa.t

val imfant : t -> Imfant.t
(** The wrapped transition-centric engine (shares the automaton). *)

val n_classes : t -> int
(** Size of the byte-class alphabet the memo rows are indexed by
    (inherited from the wrapped {!Imfant} engine; 256 when class
    compression was tuned off at compile time). *)

val capacity : t -> int
(** The current adaptive capacity, in rows (= [stats.capacity]). *)

val steps_total : t -> int
(** [stats.steps] without the O(resident rows) footprint walk — for
    per-call online monitors (the [auto] planner's churn detector). *)

val hits_total : t -> int
(** [stats.hits], same O(1) contract as {!steps_total}. *)

val stats : t -> stats
(** Cumulative cache counters; {!reset_stats} zeroes them without
    touching the cache. Hit rate is [hits / steps]. *)

val reset_stats : t -> unit
(** Zero every counter in {!stats} — including the eviction, resize
    and demotion series and the adaptive band's internal window marks
    — without touching the cache contents, the current capacity, or
    the demotion state. *)

val flush : t -> unit
(** Drop every dynamically interned configuration, return the
    capacity to its configured base, and bump the epoch: the next
    step from any configuration takes the NFA fallback path again.
    Outstanding sessions survive (they re-intern their
    configuration). Counts as a flush in {!stats}; combined with
    {!reset_stats} it returns the engine to its freshly-compiled
    observable state — what the registry adapter's [reset_stats]
    does. *)

(** {2 Demotion}

    The [auto:] planner's online escape hatch. A demoted engine stops
    using (and paying for) the memo cache entirely: every step is the
    NFA fallback from the explicit configuration — operationally
    iMFAnt with the hybrid's reporting plumbing. Streaming sessions
    carry their configuration across both transitions, so no session
    loses its position, activation state or pending end-anchored
    matches. *)

val demote : t -> unit
(** Engage the NFA bypass (idempotent). Frees the cache (counts as a
    flush) and counts a demotion in {!stats}. *)

val promote : t -> unit
(** Leave the bypass: steps go back through the (empty, to-be-refilled)
    memo cache. Idempotent. *)

val demoted : t -> bool

val run : t -> string -> match_event list
(** All matches, ordered by end position (ties by FSA id). Equal to
    {!Imfant.run} on the same automaton and input. *)

val count : t -> string -> int

val count_per_fsa : t -> string -> int array

val run_chunk :
  t -> string -> start:int -> stop:int -> on_match:(int -> int -> unit) ->
  Imfant.carry
(** Chunk-local pass for the SFA decomposition ({!Sfa}): the matches
    and carry-out configuration produced by threads injected inside
    [input.[start..stop-1]] only. Starts from the position-0
    configuration when [start = 0] and from the dead configuration
    otherwise; end-anchored matches only fire at the global end of
    input. The returned carry aliases the interned row's hash-consed
    bitsets — immutable, but the engine itself must still not be
    shared across domains. *)

(** {2 Streaming}

    Same contract as {!Imfant.session}: feeding chunks [c1, …, cn]
    then {!finish} equals [run t (c1 ^ … ^ cn)], end positions are
    global stream offsets, end-anchored rules report at {!finish}.
    Sessions share their engine's cache — concurrent sessions on one
    engine are fine within a single domain and make the cache warmer
    for each other. A cache flush or an eviction forced by one
    session (or by a [run] on the same engine) does not disturb the
    others: each session keeps its current configuration as the
    durable handle and re-interns it when its row id went stale (the
    engine detects both a flushed table, via the epoch, and an
    individually reused slot, via per-slot mint stamps), at the cost
    of one extra cache insertion. *)

type session

val session : t -> session

val feed : session -> string -> match_event list

val finish : session -> match_event list

val reset : session -> unit

val position : session -> int

(** What a compiled engine is built {e from} — the one input type of
    the unified compile surface.

    Every consumer that used to hand-roll its own path from "rules on
    disk" or "a serialized artifact" to a running engine
    ([mfsa-match], [mfsa-live], [mfsa-served], the bench harness, the
    serving layers) now constructs a [Source.t] and hands it to
    {!Registry.compile_exn} (or [Live.of_source] /
    [Serve.create_source] / [Served.create_source]). The source names
    where the automata come from:

    - {!Rules} / {!Rules_file}: POSIX-ERE patterns, compiled through
      the full pipeline (parse → Thompson → optimise → merge).
    - {!Automata}: already-built automata (e.g. loaded from extended
      ANML) — engines compile their tables from them.
    - {!Artifact_file} / {!Artifact_bytes}: a versioned binary
      artifact written by [mfsa-compile --emit]; loading reconstructs
      engine-ready tables in O(size) with no re-derivation.

    Rule compilation and artifact decoding live {e above} this
    library ([mfsa.core] and [mfsa.artifact]); they plug in through
    {!set_rule_compiler} / {!set_artifact_loader} at link time, so
    the registry can stay the single compile entrypoint without a
    dependency cycle. *)

type t =
  | Rules of string array  (** One POSIX-ERE pattern per entry. *)
  | Rules_file of string
      (** Path to a rules file (one pattern per line, [#] comments);
          ["-"] reads stdin. *)
  | Automata of Mfsa_model.Mfsa.t list  (** Pre-built automata. *)
  | Artifact_file of string  (** Path to a binary artifact. *)
  | Artifact_bytes of string  (** An artifact already in memory. *)

type resolved =
  | Compiled_automata of Mfsa_model.Mfsa.t list
      (** Engines must run their own table derivations. *)
  | Compiled_tables of Tables.t list
      (** Engine-ready tables — adopted, never re-derived. Engines
          without a table loader ({!Engine_sig.S.of_tables} =
          [None]) cannot execute these. *)

exception Error of string
(** Source-level failure: unreadable rules file, or a missing back
    end (executable linked without the pipeline / artifact library).
    Artifact decoding failures raise the artifact library's own typed
    error instead. *)

val resolve : t -> resolved
(** Read, compile or decode the source. Raises the pipeline's typed
    [Compile_error] on bad rules, the artifact library's typed error
    on a bad artifact, and {!Error} for source-level failures. *)

val describe : t -> string
(** Short human label ("rules file x", "artifact y", …) for error
    messages. *)

val read_rules_file : string -> string array
(** The shared rules-file reader (one pattern per line, [#] comments,
    ["-"] = stdin) — exposed so CLI code paths that need the raw
    patterns (e.g. [mfsa-served]'s add/remove admin) read files with
    the same semantics as {!Rules_file}.
    @raise Error on an unreadable file. *)

(** {2 Artifact sniffing}

    The artifact magic is owned here (below the artifact library) so
    CLIs can dispatch on file type without depending on the decoder. *)

val artifact_magic : string
(** The 8-byte file magic every artifact starts with. *)

val is_artifact_string : string -> bool
val is_artifact_file : string -> bool
(** [false] also when the file is unreadable or shorter than the
    magic. *)

(** {2 Back-end registration} (called at module init by the
    providers; user code never needs these) *)

val set_rule_compiler : (string array -> Mfsa_model.Mfsa.t list) -> unit
val set_artifact_loader :
  ([ `File of string | `Bytes of string ] -> Tables.t list) -> unit

module Vec = Mfsa_util.Vec

type t = {
  n_states : int;
  (* Flattened goto ∘ fail: [next.(q * 256 + c)] is the state after
     reading byte c in state q, fail arcs already resolved. *)
  next : int array;
  (* Output lists: pattern ids ending at each state (own output plus
     the inherited fail-chain outputs, pre-merged). *)
  outputs : int list array;
}

type match_event = { pattern : int; end_pos : int }

let build patterns =
  Array.iter
    (fun p ->
      if String.length p = 0 then
        invalid_arg "Aho_corasick.build: empty pattern")
    patterns;
  (* 1. Trie of all patterns. *)
  let children = Vec.create () in
  let outputs = Vec.create () in
  let new_node () =
    Vec.push children (Array.make 256 (-1));
    Vec.push outputs [];
    Vec.length children - 1
  in
  let root = new_node () in
  Array.iteri
    (fun id pattern ->
      let q = ref root in
      String.iter
        (fun c ->
          let kids = Vec.get children !q in
          let next =
            match kids.(Char.code c) with
            | -1 ->
                let n = new_node () in
                kids.(Char.code c) <- n;
                n
            | n -> n
          in
          q := next)
        pattern;
      Vec.set outputs !q (id :: Vec.get outputs !q))
    patterns;
  let n = Vec.length children in
  (* 2. BFS to compute fail links; flatten goto+fail into a total
     table and merge outputs down the fail chains. *)
  let fail = Array.make n root in
  let next = Array.make (n * 256) root in
  let out = Array.make n [] in
  for i = 0 to n - 1 do
    out.(i) <- Vec.get outputs i
  done;
  let queue = Queue.create () in
  let root_kids = Vec.get children root in
  for c = 0 to 255 do
    match root_kids.(c) with
    | -1 -> next.((root * 256) + c) <- root
    | k ->
        next.((root * 256) + c) <- k;
        fail.(k) <- root;
        Queue.add k queue
  done;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    out.(q) <- out.(q) @ out.(fail.(q));
    let kids = Vec.get children q in
    for c = 0 to 255 do
      match kids.(c) with
      | -1 -> next.((q * 256) + c) <- next.((fail.(q) * 256) + c)
      | k ->
          next.((q * 256) + c) <- k;
          fail.(k) <- next.((fail.(q) * 256) + c);
          Queue.add k queue
    done
  done;
  { n_states = n; next; outputs = out }

let n_states t = t.n_states

let start_state = 0

let scan_from t ~state input ~on_match =
  let q = ref state in
  String.iteri
    (fun i c ->
      q := t.next.((!q * 256) + Char.code c);
      match t.outputs.(!q) with
      | [] -> ()
      | out -> List.iter (fun id -> on_match id (i + 1)) out)
    input;
  !q

let scan t input ~on_match =
  ignore (scan_from t ~state:start_state input ~on_match)

let run t input =
  let acc = ref [] in
  scan t input ~on_match:(fun pattern e -> acc := { pattern; end_pos = e } :: !acc);
  List.rev
    (List.sort
       (fun a b ->
         if a.end_pos <> b.end_pos then Int.compare b.end_pos a.end_pos
         else Int.compare b.pattern a.pattern)
       !acc)

let count t input =
  let c = ref 0 in
  scan t input ~on_match:(fun _ _ -> incr c);
  !c

let count_per_pattern t input =
  (* Number of patterns = 1 + max id seen in outputs. *)
  let max_id = ref (-1) in
  Array.iter (List.iter (fun id -> if id > !max_id then max_id := id)) t.outputs;
  let counts = Array.make (!max_id + 1) 0 in
  scan t input ~on_match:(fun id _ -> counts.(id) <- counts.(id) + 1);
  counts

(* ----------------------------------------------- Table round trip *)

type tables = {
  ac_states : int;
  ac_next : int array;
  ac_out_off : int array;
  ac_out_ids : int array;
}

let export t =
  let n_out = Array.fold_left (fun a l -> a + List.length l) 0 t.outputs in
  let out_off = Array.make (t.n_states + 1) 0 in
  let out_ids = Array.make n_out 0 in
  let w = ref 0 in
  Array.iteri
    (fun q l ->
      out_off.(q) <- !w;
      List.iter
        (fun id ->
          out_ids.(!w) <- id;
          incr w)
        l)
    t.outputs;
  out_off.(t.n_states) <- !w;
  { ac_states = t.n_states; ac_next = Array.copy t.next; ac_out_off = out_off;
    ac_out_ids = out_ids }

let import ?(copy = true) tb =
  let n = tb.ac_states in
  let fail msg = Error ("Aho-Corasick tables: " ^ msg) in
  if n < 1 then fail "no states"
  else if Array.length tb.ac_next <> n * 256 then
    fail "transition table size mismatch"
  else if
    (* Manual loop, not [Array.exists]: this table is by far the
       largest thing an artifact load validates, and the closure call
       per element triples the cost of the scan. *)
    let bad = ref false in
    for i = 0 to Array.length tb.ac_next - 1 do
      let q = Array.unsafe_get tb.ac_next i in
      if q < 0 || q >= n then bad := true
    done;
    !bad
  then fail "transition target out of range"
  else if Array.length tb.ac_out_off <> n + 1 then
    fail "output offset table size mismatch"
  else if tb.ac_out_off.(0) <> 0 || tb.ac_out_off.(n) <> Array.length tb.ac_out_ids
  then fail "output offsets do not cover the id table"
  else begin
    let monotone = ref true in
    for q = 0 to n - 1 do
      if tb.ac_out_off.(q) > tb.ac_out_off.(q + 1) then monotone := false
    done;
    if not !monotone then fail "output offsets not monotone"
    else if Array.exists (fun id -> id < 0) tb.ac_out_ids then
      fail "negative pattern id"
    else begin
      let outputs =
        Array.init n (fun q ->
            List.init
              (tb.ac_out_off.(q + 1) - tb.ac_out_off.(q))
              (fun i -> tb.ac_out_ids.(tb.ac_out_off.(q) + i)))
      in
      Ok
        {
          n_states = n;
          next = (if copy then Array.copy tb.ac_next else tb.ac_next);
          outputs;
        }
    end
  end

(** Greedy-scheduler latency projection for the multi-thread sweep
    (paper Fig. 10).

    The paper measures ruleset latency on a 4-core/8-thread machine
    while sweeping the pool size from 1 to 128 threads. On hosts with
    fewer cores than the sweep (this reproduction's container exposes
    a single core) the wall clock cannot exhibit the scaling, so the
    harness measures each automaton's single-thread execution time for
    real and replays the pool's greedy in-order assignment to compute
    the T-thread makespan: worker threads become free in time order
    and each takes the next remaining automaton. This is exactly the
    quantity Fig. 10 studies — how merging reshapes the distribution
    of work across threads — decoupled from the host's core count
    (DESIGN.md, substitution 3). *)

val project : threads:int -> float array -> float
(** [project ~threads times] is the makespan of greedy in-order list
    scheduling of jobs with the given durations onto [threads] workers.
    [project ~threads:1 times] = sum of [times]; with
    [threads >= Array.length times] it is the maximum.
    @raise Invalid_argument if [threads < 1] or any duration is
    negative. *)

val speedup : threads:int -> float array -> float
(** Ratio [project ~threads:1 t /. project ~threads t]; 1.0 for the
    empty job list. *)

val best_threads_within : tolerance:float -> target:float -> float array -> int
(** Smallest thread count whose projected makespan is within
    [tolerance] (relative, e.g. 0.05) of [target] — the paper's
    "best thread utilisation" marker (least threads matching the
    single-FSA top performance). Returns the job count if even full
    parallelism cannot reach the target. *)

(** Global hot-loop tuning knobs.

    {!Engine_sig.S.compile} takes no options, so the optimisation
    toggles live here: engines snapshot the current tuning once at
    compile time and bake it into the compiled instance (a compiled
    engine never changes behaviour when the knobs move afterwards —
    Live generations and Serve replicas each capture the tuning in
    force when they compiled). All default to on/maximal.

    - [classes]: index transition tables by byte-equivalence-class id
      ({!Mfsa_model.Mfsa.classes}) instead of raw byte. Off means the
      identity partition (256 classes) — same layout, no compression.
    - [prefilter]: build an Aho–Corasick prefilter over required
      literal prefixes ({!Prefilter}) and skip cold regions. Only
      engages when every unanchored rule has a usable prefix set.
    - [stride]: 1 or 2. At 2 the hybrid engine steps two bytes at a
      time through lazily built pair-class tables, falling back to
      single-byte at chunk tails and under cache pressure.
    - [cache_size]: base capacity of the hybrid engine's hash-consed
      configuration cache, in rows. The adaptive sizing bands grow the
      live capacity up to 8x this base under churn and shrink it back
      when the cache runs hot; artifacts snapshot the value so a
      loaded engine reproduces the compile-time setting. *)

type t = { classes : bool; prefilter : bool; stride : int; cache_size : int }

val default : t
(** [{ classes = true; prefilter = true; stride = 2; cache_size = 4096 }]. *)

val get : unit -> t

val set : t -> unit
(** @raise Invalid_argument if [stride] is not 1 or 2, or if
    [cache_size < 1]. *)

val with_tuning : t -> (unit -> 'a) -> 'a
(** Run [f] with the knobs temporarily replaced; restores the previous
    tuning on exit (benches and equivalence tests use this). *)

(** SFA-style intra-input parallelism (Sin'ya & Matsuzaki,
    "Simultaneous Finite Automata") for the merged-automaton engines.

    One oversized input is cut into contiguous chunks, one per domain.
    Each chunk runs the sequential engine restricted to its window —
    finding every match whose threads inject inside the chunk, and
    producing the chunk's carry-out boundary configuration
    ({!Imfant.run_chunk} / {!Hybrid.run_chunk}). The per-byte step
    distributes over thread-set union, so the join is a cheap
    left-to-right pass: each boundary's carried configuration is
    stepped through the next chunk with no injection
    ({!Imfant.carry_step}), reporting the matches carried threads
    complete; carried sets shrink monotonically and usually die within
    bytes, so cold boundaries resolve in O(1). The merged, deduplicated
    event set equals the sequential engine's matches exactly —
    including start/end anchors and literals straddling chunk splits.

    Exposed to users as the [sfa{domains=..,threshold=..}:<inner>]
    registry wrapper (inner engine [imfant] or [hybrid]); inputs below
    the threshold, and streaming sessions, take the sequential inner
    path. *)

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

(** {2 Wrapper spec} *)

type spec = {
  domains : int;  (** chunk slots per oversized input, in [[1,64]] *)
  threshold : int;  (** input bytes above which a run is chunked, ≥ 1 *)
}

val default : spec
(** 2 domains, 1 MiB threshold. *)

val max_domains : int
(** Upper bound on [spec.domains] (64). *)

val split_spec : string -> (spec * string, string) result option
(** Recognise [sfa:<inner>] / [sfa{k=v,..}:<inner>] engine names:
    [None] when the name is not sfa-shaped, [Some (Error _)] with a
    one-line message on a malformed spec (unknown key, non-positive
    threshold, domains outside [[1,64]]), [Some (Ok (spec, inner))]
    otherwise. *)

val make : name:string -> spec -> inner:string -> (module Engine_sig.S)
(** The registry wrapper module. [inner] must be ["imfant"] or
    ["hybrid"] (validated at compile time). *)

(** {2 Direct API} *)

type t

val compile : spec -> inner:string -> Mfsa_model.Mfsa.t -> t
(** Raises [Invalid_argument] on an invalid spec or an inner engine
    other than imfant/hybrid. Forces the CSR index up front (the join
    needs it, and a lazy thunk must not race across domains). *)

val of_tables : spec -> inner:string -> Tables.t -> t

val export_tables : t -> Tables.t

val mfsa : t -> Mfsa_model.Mfsa.t

val spec : t -> spec

val run : t -> string -> match_event list
(** All matches, deduplicated per (FSA, end position) and ordered by
    end position (ties by FSA id) — the same set every sequential
    engine reports. Inputs of at least [threshold] bytes (with
    [domains ≥ 2]) are chunked across freshly spawned domains; smaller
    ones run sequentially. *)

val count : t -> string -> int

val count_per_fsa : t -> string -> int array

val chunked : t -> string -> bool
(** Whether [run] would take the chunked path for this input. *)

type timing = {
  chunk_s : float array;  (** per-chunk local pass seconds *)
  join_s : float;  (** fix-up + merge seconds *)
}

val run_span : t -> string -> match_event list * timing
(** The chunk passes run sequentially on the calling domain, each
    individually timed — the critical path (max chunk time + join
    time) a machine with [domains] free cores would see, independent
    of how many cores the measuring box actually has. Used by
    [bench sfa]; {!run} remains the real parallel path. *)

val stats : engine:string -> t -> Mfsa_obs.Snapshot.t
(** The [mfsa_sfa_*] series, labelled with the wrapper's full engine
    name. *)

val reset_counters : t -> unit

val reset_stats : t -> unit

(** {2 Streaming}

    Sessions take the sequential inner engine: streams already arrive
    chunked by the transport, and the SFA split applies to oversized
    single buffers. Contract as {!Imfant.session}. *)

type session

val session : t -> session

val feed : session -> string -> match_event list

val finish : session -> match_event list

val reset : session -> unit

val position : session -> int

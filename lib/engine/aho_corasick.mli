(** Aho–Corasick multi-pattern string matching.

    The classical answer to "match many patterns in one pass" when the
    patterns are plain strings (paper §I: string matching is the
    well-understood special case that REs generalise). It serves two
    roles in this library: a correctness oracle and performance
    baseline for MFSAs built from literal-only rulesets (where the
    MFSA's merged-prefix structure and the AC trie coincide
    conceptually), and the building block of decomposition-style
    matchers à la Hyperscan that the paper compares against (§VII).

    The automaton is the standard goto/fail/output construction with
    the fail function flattened into a total byte-indexed transition
    table, so matching is a strict one-lookup-per-byte scan. *)

type t

val build : string array -> t
(** Build the matcher. Empty patterns are rejected; duplicate patterns
    are fine (each keeps its own identifier = its index).
    @raise Invalid_argument on an empty pattern. *)

type match_event = { pattern : int; end_pos : int }

val run : t -> string -> match_event list
(** Every occurrence of every pattern, ordered by end position
    (pattern-id order within one position). Overlapping and nested
    occurrences are all reported. *)

val count : t -> string -> int

val count_per_pattern : t -> string -> int array

val n_states : t -> int
(** Trie nodes (for size comparisons against merged automata). *)

val start_state : int
(** The automaton's initial state, for {!scan_from}. *)

val scan_from : t -> state:int -> string -> on_match:(int -> int -> unit) -> int
(** [scan_from t ~state chunk ~on_match] resumes a scan from an
    explicit automaton state and returns the state after the chunk, so
    callers can stream input in pieces without missing occurrences
    that straddle chunk boundaries. [on_match id e] receives the
    pattern id and the chunk-relative end offset [e] (an occurrence
    begun in an earlier chunk reports [e < length of the pattern]). *)

val scan : t -> string -> on_match:(int -> int -> unit) -> unit
(** One-shot scan from {!start_state}; [on_match id e] as above. *)

(** {2 Table round trip}

    The automaton as plain arrays, for the binary artifact layer: the
    flattened transition table plus the output lists in CSR form
    (state [q]'s pattern ids are
    [ac_out_ids.(ac_out_off.(q)) .. ac_out_ids.(ac_out_off.(q+1)-1)],
    in list order). [import (export t)] reproduces [t] exactly. *)

type tables = {
  ac_states : int;
  ac_next : int array;  (** [ac_states * 256] entries. *)
  ac_out_off : int array;  (** [ac_states + 1] entries, monotone. *)
  ac_out_ids : int array;
}

val export : t -> tables

val import : ?copy:bool -> tables -> (t, string) result
(** Validates shape and bounds (state targets in range, offsets
    monotone and covering the id table) — the artifact reader's
    defence against a corrupt or hand-edited file. [copy] (default
    [true]) duplicates the transition array; pass [~copy:false] only
    when ownership of [tables] transfers to the automaton (the
    artifact loader's freshly parsed arrays), sparing a multi-megabyte
    copy on large literal sets. *)

module Mfsa = Mfsa_model.Mfsa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec

type t = {
  z : Mfsa.t;
  tuning : Tuning.t;
      (* The knob snapshot baked in at compile (or adoption) time —
         recorded so derived engines and artifacts inherit it instead
         of re-reading the global. *)
  k : int;  (* byte-class count; tables below are class-indexed *)
  class_of : bytes;
      (* 256-entry byte -> class map ({!Mfsa.classes}, or the identity
         when byte-class compression is tuned off). *)
  trans_by_cls : int array array;
      (* [trans_by_cls.(cls)] = transition indices enabled by every
         byte of class cls. *)
  csr : (int array * int array) Lazy.t;
      (* Row-indexed CSR (off, tr) over (state, class) cells: the
         transitions leaving state q on class cls are
         [tr.(off.(q*k+cls) .. off.(q*k+cls+1)-1)]; [off] has length
         n_states*k+1. Only the hybrid engine's miss path reads it,
         and the offset array costs 8*k bytes per state, so it is
         built on first force — imfant-only users (notably Live,
         which recompiles an engine per generation) never pay it. *)
  prefilter : Prefilter.t option;
      (* Literal prefilter, when tuned on and every unanchored rule
         has a usable mandatory prefix set. *)
  anchored_end_mask : Bitset.t;
      (* FSAs whose matches may only end at end-of-input. *)
  any_end_anchor : bool;
  init_all : Bitset.t array;
      (* Per-state initial sets at position 0 (aliases z.init_sets). *)
  init_unanch : Bitset.t array;
      (* Same minus the start-anchored FSAs: positions > 0. *)
  init_anch : Bitset.t array;
      (* Only the start-anchored FSAs: position 0 when the prefilter
         says position 0 is not a literal candidate. All three are
         read-only once built. *)
  init_none : Bitset.t array;
      (* All-empty (one shared empty set): non-candidate positions. *)
  mutable skipped_bytes : int;
      (* Input bytes the prefilter let [execute] jump over, cumulative
         across runs; surfaced as mfsa_engine_prefilter_skipped_bytes. *)
}

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type stats = { positions : int; avg_active : float; max_active : int }

(* CSR by (source state, class): counting sort of the same entries
   trans_by_cls holds, keyed by row(t)*k+cls instead of cls. *)
let make_csr (z : Mfsa.t) k class_of =
  lazy
    (let nt = Mfsa.n_transitions z in
     let n_cells = z.Mfsa.n_states * k in
     let csr_off = Array.make (n_cells + 1) 0 in
     let stamp = Array.make k (-1) in
     let each_cell f =
       for t = 0 to nt - 1 do
         let base = z.Mfsa.row.(t) * k in
         Charclass.iter
           (fun c ->
             let cl = Char.code (Bytes.get class_of (Char.code c)) in
             if stamp.(cl) <> t then begin
               stamp.(cl) <- t;
               f t (base + cl)
             end)
           z.Mfsa.idx.(t)
       done;
       Array.fill stamp 0 k (-1)
     in
     each_cell (fun _ cell -> csr_off.(cell + 1) <- csr_off.(cell + 1) + 1);
     for cell = 0 to n_cells - 1 do
       csr_off.(cell + 1) <- csr_off.(cell + 1) + csr_off.(cell)
     done;
     let csr_tr = Array.make csr_off.(n_cells) 0 in
     let cursor = Array.copy csr_off in
     each_cell (fun t cell ->
         csr_tr.(cursor.(cell)) <- t;
         cursor.(cell) <- cursor.(cell) + 1);
     (csr_off, csr_tr))

(* The anchored-only activation table (position 0 at non-candidate
   offsets) and the end-anchor mask are O(states + fsas) bitset work —
   cheap enough to derive on both the compile and the table-adoption
   paths. *)
let derive_anchor_tables (z : Mfsa.t) =
  let anchored_end_mask = Bitset.create z.Mfsa.n_fsas in
  Array.iteri
    (fun j anchored -> if anchored then Bitset.add anchored_end_mask j)
    z.Mfsa.anchored_end;
  let init_anch =
    Array.init z.Mfsa.n_states (fun q -> Bitset.copy z.Mfsa.init_sets.(q))
  in
  Array.iteri
    (fun j anchored ->
      if not anchored then Bitset.remove init_anch.(z.Mfsa.init_of.(j)) j)
    z.Mfsa.anchored_start;
  let init_none = Array.make z.Mfsa.n_states (Bitset.create z.Mfsa.n_fsas) in
  (anchored_end_mask, init_anch, init_none)

let compile (z : Mfsa.t) =
  let tuning = Tuning.get () in
  let cls =
    if tuning.Tuning.classes then Mfsa.classes z else Mfsa.identity_classes
  in
  let k = cls.Mfsa.n_classes in
  let class_of = cls.Mfsa.class_of_byte in
  (* A transition's enabling class is a union of byte classes, so one
     stamp per (transition, class) pair dedupes the per-byte walk. *)
  let by_cls = Array.init k (fun _ -> Vec.create ()) in
  let stamp = Array.make k (-1) in
  Array.iteri
    (fun t cc ->
      Charclass.iter
        (fun c ->
          let cl = Char.code (Bytes.get class_of (Char.code c)) in
          if stamp.(cl) <> t then begin
            stamp.(cl) <- t;
            Vec.push by_cls.(cl) t
          end)
        cc)
    z.Mfsa.idx;
  (* Per-state initial sets, split by anchoring: at position 0 every
     FSA may start; afterwards only the unanchored ones (and with a
     prefilter, only at candidate positions). *)
  let init_unanch =
    Array.init z.Mfsa.n_states (fun q -> Bitset.copy z.Mfsa.init_sets.(q))
  in
  Array.iteri
    (fun j anchored ->
      if anchored then Bitset.remove init_unanch.(z.Mfsa.init_of.(j)) j)
    z.Mfsa.anchored_start;
  let anchored_end_mask, init_anch, init_none = derive_anchor_tables z in
  {
    z;
    tuning;
    k;
    class_of;
    trans_by_cls = Array.map Vec.to_array by_cls;
    csr = make_csr z k class_of;
    prefilter = (if tuning.Tuning.prefilter then Prefilter.analyze z else None);
    anchored_end_mask;
    any_end_anchor = not (Bitset.is_empty anchored_end_mask);
    init_all = z.Mfsa.init_sets;
    init_unanch;
    init_anch;
    init_none;
    skipped_bytes = 0;
  }

let of_tables (tb : Tables.t) =
  let z = tb.Tables.z in
  let anchored_end_mask, init_anch, init_none = derive_anchor_tables z in
  {
    z;
    tuning = tb.Tables.tuning;
    k = tb.Tables.n_classes;
    class_of = tb.Tables.class_of;
    trans_by_cls = tb.Tables.trans_by_cls;
    csr =
      (match tb.Tables.csr with
      | Some csr -> Lazy.from_val csr
      | None -> make_csr z tb.Tables.n_classes tb.Tables.class_of);
    prefilter = tb.Tables.prefilter;
    anchored_end_mask;
    any_end_anchor = not (Bitset.is_empty anchored_end_mask);
    init_all = z.Mfsa.init_sets;
    init_unanch = tb.Tables.init_unanch;
    init_anch;
    init_none;
    skipped_bytes = 0;
  }

let export_tables t =
  {
    Tables.z = t.z;
    tuning = t.tuning;
    n_classes = t.k;
    class_of = t.class_of;
    trans_by_cls = t.trans_by_cls;
    csr = Some (Lazy.force t.csr);
    init_unanch = t.init_unanch;
    prefilter = t.prefilter;
  }

let mfsa t = t.z

let tuning t = t.tuning

let csr t = Lazy.force t.csr

let init_tables t = (t.init_all, t.init_unanch)

let n_classes t = t.k

let class_of t = t.class_of

let prefilter t = t.prefilter

let skipped_bytes t = t.skipped_bytes

let reset_skipped t = t.skipped_bytes <- 0

(* Engine core. [on_match] receives each (fsa, end position) pair
   exactly once, end positions in increasing order. [track] switches
   the Table II active-set instrumentation on.

   With a prefilter, initial states are only injected at candidate
   positions — offsets where some rule's required literal prefix
   starts (position 0 stays an injection point for the start-anchored
   rules). A thread injected elsewhere can never reach a final state
   consistently (its match would have to begin with the literal), so
   restricting injection is match-preserving; and once the active set
   is empty with injection restricted, every byte before the next
   candidate is a guaranteed no-op, so the loop jumps straight
   there. *)
let execute t input ~on_match ~track =
  let z = t.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let cur_sets = Array.init n (fun _ -> Bitset.create nf) in
  let next_sets = Array.init n (fun _ -> Bitset.create nf) in
  (* Epoch-stamped activity: state q is active in generation g iff
     stamp.(q) = g. Bumping the generation deactivates every state in
     O(1), instead of clearing an n-sized vector per input byte. *)
  let cur_stamp = Array.make n (-1) in
  let next_stamp = Array.make n (-1) in
  let scratch = Bitset.create nf in
  let match_now = Bitset.create nf in
  let reported = Bitset.create nf in
  let activity = Bitset.create nf in
  let sum_active = ref 0 in
  let max_active = ref 0 in
  let len = String.length input in
  let class_of = t.class_of in
  (* Mutable swap targets. *)
  let cur_sets = ref cur_sets and next_sets = ref next_sets in
  let cur_stamp = ref cur_stamp and next_stamp = ref next_stamp in
  let generation = ref 0 in
  (* The active-set instrumentation (Table II) characterises the
     automaton itself, so the tracked entry point runs unfiltered —
     skipping dead stretches would zero the very quantity measured. *)
  let use_pf = t.prefilter <> None && not track in
  let cands =
    if use_pf then
      Prefilter.candidates (Option.get t.prefilter) input
    else [||]
  in
  let nc = Array.length cands in
  let ci = ref 0 in
  let i = ref 0 in
  while !i < len do
    (* [ci] = first candidate at or after the current position. *)
    if use_pf then while !ci < nc && cands.(!ci) < !i do incr ci done;
    let at_cand = (not use_pf) || (!ci < nc && cands.(!ci) = !i) in
    let c = Char.code (String.unsafe_get input !i) in
    let enabled = t.trans_by_cls.(Char.code (Bytes.unsafe_get class_of c)) in
    let inits =
      if !i = 0 then (if at_cand then t.init_all else t.init_anch)
      else if at_cand then t.init_unanch
      else t.init_none
    in
    Bitset.clear reported;
    if track then Bitset.clear activity;
    let any_next = ref false in
    for k = 0 to Array.length enabled - 1 do
      let tr = enabled.(k) in
      let s = z.Mfsa.row.(tr) in
      let has_cur = !cur_stamp.(s) = !generation in
      let init_b = inits.(s) in
      if has_cur || not (Bitset.is_empty init_b) then begin
        (* J' = (J(q1) ∪ init(q1)) ∩ bel(t)  — Equations 4 and 6. *)
        Bitset.clear scratch;
        if has_cur then ignore (Bitset.union_into ~dst:scratch !cur_sets.(s));
        ignore (Bitset.union_into ~dst:scratch init_b);
        Bitset.inter_into ~dst:scratch z.Mfsa.bel.(tr);
        if not (Bitset.is_empty scratch) then begin
          let d = z.Mfsa.col.(tr) in
          if !next_stamp.(d) <> !generation + 1 then begin
            !next_stamp.(d) <- !generation + 1;
            Bitset.clear !next_sets.(d)
          end;
          ignore (Bitset.union_into ~dst:!next_sets.(d) scratch);
          any_next := true;
          if track then ignore (Bitset.union_into ~dst:activity scratch);
          (* Equation 5: matches for the FSAs final in q2 ∩ J'. *)
          Bitset.clear match_now;
          ignore (Bitset.union_into ~dst:match_now scratch);
          Bitset.inter_into ~dst:match_now z.Mfsa.final_sets.(d);
          if not (Bitset.is_empty match_now) then
            Bitset.iter
              (fun j ->
                if
                  (not (Bitset.mem reported j))
                  && ((not z.Mfsa.anchored_end.(j)) || !i + 1 = len)
                then begin
                  Bitset.add reported j;
                  on_match j (!i + 1)
                end)
              match_now
        end
      end
    done;
    if track then begin
      let a = Bitset.cardinal activity in
      sum_active := !sum_active + a;
      if a > !max_active then max_active := a
    end;
    (* Swap the state vectors; advancing the generation deactivates
       the previous one without touching memory. *)
    let tmp_sets = !cur_sets and tmp_stamp = !cur_stamp in
    cur_sets := !next_sets;
    cur_stamp := !next_stamp;
    next_sets := tmp_sets;
    next_stamp := tmp_stamp;
    incr generation;
    if use_pf && not !any_next then begin
      (* Empty active set: nothing can happen before the next literal
         candidate — jump there. *)
      let j = if at_cand then !ci + 1 else !ci in
      let target = if j < nc then max cands.(j) (!i + 1) else len in
      if target > !i + 1 then
        t.skipped_bytes <- t.skipped_bytes + (target - !i - 1);
      i := target
    end
    else incr i
  done;
  let positions = len in
  {
    positions;
    avg_active =
      (if positions = 0 then 0.
       else float_of_int !sum_active /. float_of_int positions);
    max_active = !max_active;
  }

let run t input =
  let acc = ref [] in
  let _ = execute t input ~track:false ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc) in
  List.rev !acc

let count t input =
  let c = ref 0 in
  let _ = execute t input ~track:false ~on_match:(fun _ _ -> incr c) in
  !c

let run_with_stats t input =
  let acc = ref [] in
  let stats =
    execute t input ~track:true ~on_match:(fun fsa e ->
        acc := { fsa; end_pos = e } :: !acc)
  in
  (List.rev !acc, stats)

let count_per_fsa t input =
  let counts = Array.make t.z.Mfsa.n_fsas 0 in
  let _ =
    execute t input ~track:false ~on_match:(fun fsa _ ->
        counts.(fsa) <- counts.(fsa) + 1)
  in
  counts

(* ------------------------------------------- Chunked entry points *)

(* The SFA decomposition (lib/engine/sfa) rests on the step function
   distributing over thread-set union: the sequential configuration at
   a chunk boundary is the union of (a) threads injected inside the
   chunk — computed here, in parallel, with no knowledge of earlier
   chunks — and (b) the carried-in boundary configuration stepped with
   no injection at all (carry_step below). A carry is that explicit
   configuration: active states ascending, paired with their
   activation sets, as plain arrays safe to hand across domains. *)

type carry = int array * Bitset.t array

let empty_carry : carry = ([||], [||])

(* Injection-driven local pass over input.[start..stop-1]: identical
   to [execute] restricted to the window — position 0 (global) still
   gets the anchored-start injection, candidate offsets come from the
   prefilter run on the window extended by max_len - 1 bytes so a
   literal straddling the chunk end still marks its in-chunk start.
   End-anchored matches only fire at the global end of input, so
   non-final chunks never report them. Prefilter skips are returned,
   not accumulated into [t]: chunk passes run concurrently over one
   shared engine. *)
let run_chunk t input ~start ~stop ~on_match =
  let z = t.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let cur_sets = Array.init n (fun _ -> Bitset.create nf) in
  let next_sets = Array.init n (fun _ -> Bitset.create nf) in
  let cur_stamp = Array.make n (-1) in
  let next_stamp = Array.make n (-1) in
  let scratch = Bitset.create nf in
  let match_now = Bitset.create nf in
  let reported = Bitset.create nf in
  let len = String.length input in
  let class_of = t.class_of in
  let cur_sets = ref cur_sets and next_sets = ref next_sets in
  let cur_stamp = ref cur_stamp and next_stamp = ref next_stamp in
  let generation = ref 0 in
  let skipped = ref 0 in
  let use_pf = t.prefilter <> None in
  let cands =
    if use_pf then begin
      let p = Option.get t.prefilter in
      let wstop = min len (stop + Prefilter.max_len p - 1) in
      let wcands =
        Prefilter.candidates p (String.sub input start (wstop - start))
      in
      let out = Vec.create () in
      Array.iter
        (fun o -> if start + o < stop then Vec.push out (start + o))
        wcands;
      Vec.to_array out
    end
    else [||]
  in
  let nc = Array.length cands in
  let ci = ref 0 in
  let i = ref start in
  while !i < stop do
    if use_pf then while !ci < nc && cands.(!ci) < !i do incr ci done;
    let at_cand = (not use_pf) || (!ci < nc && cands.(!ci) = !i) in
    let c = Char.code (String.unsafe_get input !i) in
    let enabled = t.trans_by_cls.(Char.code (Bytes.unsafe_get class_of c)) in
    let inits =
      if !i = 0 then (if at_cand then t.init_all else t.init_anch)
      else if at_cand then t.init_unanch
      else t.init_none
    in
    Bitset.clear reported;
    let any_next = ref false in
    for k = 0 to Array.length enabled - 1 do
      let tr = enabled.(k) in
      let s = z.Mfsa.row.(tr) in
      let has_cur = !cur_stamp.(s) = !generation in
      let init_b = inits.(s) in
      if has_cur || not (Bitset.is_empty init_b) then begin
        Bitset.clear scratch;
        if has_cur then ignore (Bitset.union_into ~dst:scratch !cur_sets.(s));
        ignore (Bitset.union_into ~dst:scratch init_b);
        Bitset.inter_into ~dst:scratch z.Mfsa.bel.(tr);
        if not (Bitset.is_empty scratch) then begin
          let d = z.Mfsa.col.(tr) in
          if !next_stamp.(d) <> !generation + 1 then begin
            !next_stamp.(d) <- !generation + 1;
            Bitset.clear !next_sets.(d)
          end;
          ignore (Bitset.union_into ~dst:!next_sets.(d) scratch);
          any_next := true;
          Bitset.clear match_now;
          ignore (Bitset.union_into ~dst:match_now scratch);
          Bitset.inter_into ~dst:match_now z.Mfsa.final_sets.(d);
          if not (Bitset.is_empty match_now) then
            Bitset.iter
              (fun j ->
                if
                  (not (Bitset.mem reported j))
                  && ((not z.Mfsa.anchored_end.(j)) || !i + 1 = len)
                then begin
                  Bitset.add reported j;
                  on_match j (!i + 1)
                end)
              match_now
        end
      end
    done;
    let tmp_sets = !cur_sets and tmp_stamp = !cur_stamp in
    cur_sets := !next_sets;
    cur_stamp := !next_stamp;
    next_sets := tmp_sets;
    next_stamp := tmp_stamp;
    incr generation;
    if use_pf && not !any_next then begin
      let j = if at_cand then !ci + 1 else !ci in
      let target = if j < nc then max cands.(j) (!i + 1) else stop in
      if target > !i + 1 then skipped := !skipped + (target - !i - 1);
      i := target
    end
    else incr i
  done;
  let states = Vec.create () in
  for q = 0 to n - 1 do
    if !cur_stamp.(q) = !generation && not (Bitset.is_empty !cur_sets.(q))
    then Vec.push states q
  done;
  let cs = Vec.to_array states in
  let sets = Array.map (fun q -> Bitset.copy !cur_sets.(q)) cs in
  (((cs, sets) : carry), !skipped)

(* Step a carried boundary configuration through input.[start..stop-1]
   with NO injection — the left-to-right join fix-up. The carried set
   only shrinks, so the loop exits the moment it dies (typically a few
   bytes past the boundary); returns the surviving carry and the bytes
   actually consumed. Allocates its own scratch: it runs once per
   chunk boundary on the coordinating domain, never per byte of the
   bulk scan. *)
let carry_step t ((cs, sets) : carry) input ~start ~stop ~on_match =
  let z = t.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let csr_off, csr_tr = Lazy.force t.csr in
  let k = t.k and class_of = t.class_of in
  let len = String.length input in
  let scratch = Bitset.create nf in
  let match_now = Bitset.create nf in
  let reported = Bitset.create nf in
  let acc_stamp = Array.make n (-1) in
  let acc_sets = Array.make n scratch (* placeholder; replaced on touch *) in
  let cur_s = ref cs and cur_b = ref sets in
  let i = ref start in
  while !i < stop && Array.length !cur_s > 0 do
    let c = Char.code (String.unsafe_get input !i) in
    let cls = Char.code (Bytes.unsafe_get class_of c) in
    let gen = !i in
    Bitset.clear reported;
    let touched = Vec.create () in
    let src_s = !cur_s and src_b = !cur_b in
    for idx = 0 to Array.length src_s - 1 do
      let q = src_s.(idx) in
      let b = src_b.(idx) in
      let base = (q * k) + cls in
      for p = csr_off.(base) to csr_off.(base + 1) - 1 do
        let tr = csr_tr.(p) in
        Bitset.clear scratch;
        ignore (Bitset.union_into ~dst:scratch b);
        Bitset.inter_into ~dst:scratch z.Mfsa.bel.(tr);
        if not (Bitset.is_empty scratch) then begin
          let d = z.Mfsa.col.(tr) in
          if acc_stamp.(d) <> gen then begin
            acc_stamp.(d) <- gen;
            acc_sets.(d) <- Bitset.copy scratch;
            Vec.push touched d
          end
          else ignore (Bitset.union_into ~dst:acc_sets.(d) scratch);
          Bitset.clear match_now;
          ignore (Bitset.union_into ~dst:match_now scratch);
          Bitset.inter_into ~dst:match_now z.Mfsa.final_sets.(d);
          if not (Bitset.is_empty match_now) then
            Bitset.iter
              (fun j ->
                if
                  (not (Bitset.mem reported j))
                  && ((not z.Mfsa.anchored_end.(j)) || !i + 1 = len)
                then begin
                  Bitset.add reported j;
                  on_match j (!i + 1)
                end)
              match_now
        end
      done
    done;
    let ts = Vec.to_array touched in
    Array.sort Int.compare ts;
    cur_s := ts;
    cur_b := Array.map (fun d -> acc_sets.(d)) ts;
    incr i
  done;
  ((((!cur_s, !cur_b)) : carry), !i - start)

(* Pointwise union of two boundary configurations (local chunk carry ∪
   stepped carry-in). Never mutates either argument's sets — the local
   side may alias a hybrid replica's interned rows. *)
let carry_union ((s1, b1) : carry) ((s2, b2) : carry) : carry =
  let n1 = Array.length s1 and n2 = Array.length s2 in
  if n1 = 0 then (s2, b2)
  else if n2 = 0 then (s1, b1)
  else begin
    let states = Vec.create () in
    let sets = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < n1 || !j < n2 do
      if !j >= n2 || (!i < n1 && s1.(!i) < s2.(!j)) then begin
        Vec.push states s1.(!i);
        sets := b1.(!i) :: !sets;
        incr i
      end
      else if !i >= n1 || s2.(!j) < s1.(!i) then begin
        Vec.push states s2.(!j);
        sets := b2.(!j) :: !sets;
        incr j
      end
      else begin
        let u = Bitset.copy b1.(!i) in
        ignore (Bitset.union_into ~dst:u b2.(!j));
        Vec.push states s1.(!i);
        sets := u :: !sets;
        incr i;
        incr j
      end
    done;
    (Vec.to_array states, Array.of_list (List.rev !sets))
  end

(* ------------------------------------------------------- Streaming *)

(* Sessions use the class-indexed tables but keep processing every
   byte: a literal can straddle a chunk boundary, so skip decisions
   would need lookahead the stream does not have yet. The batch
   entry points above are where the prefilter pays. *)

type session = {
  eng : t;
  init_all : Bitset.t array;
  init_unanch : Bitset.t array;
  mutable cur_sets : Bitset.t array;
  mutable next_sets : Bitset.t array;
  mutable cur_stamp : int array;
  mutable next_stamp : int array;
  mutable generation : int;
  s_scratch : Bitset.t;
  s_match : Bitset.t;
  s_reported : Bitset.t;
  mutable pos : int;
  mutable pending_end : int list;
      (* end-anchored FSAs matched exactly at [pos]; flushed by
         [finish], discarded whenever the stream continues *)
}

let session eng =
  let z = eng.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let init_all, init_unanch = init_tables eng in
  {
    eng;
    init_all;
    init_unanch;
    cur_sets = Array.init n (fun _ -> Bitset.create nf);
    next_sets = Array.init n (fun _ -> Bitset.create nf);
    cur_stamp = Array.make n (-1);
    next_stamp = Array.make n (-1);
    generation = 0;
    s_scratch = Bitset.create nf;
    s_match = Bitset.create nf;
    s_reported = Bitset.create nf;
    pos = 0;
    pending_end = [];
  }

let reset s =
  let n = s.eng.z.Mfsa.n_states in
  Array.fill s.cur_stamp 0 n (-1);
  Array.fill s.next_stamp 0 n (-1);
  s.generation <- 0;
  s.pos <- 0;
  s.pending_end <- []

let position s = s.pos

let feed s chunk =
  let z = s.eng.z in
  let class_of = s.eng.class_of in
  let acc = ref [] in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      (* Any continuation invalidates matches that were waiting for
         end-of-stream. *)
      s.pending_end <- [];
      let enabled =
        s.eng.trans_by_cls.(Char.code (Bytes.unsafe_get class_of c))
      in
      let inits = if s.pos = 0 then s.init_all else s.init_unanch in
      Bitset.clear s.s_reported;
      for k = 0 to Array.length enabled - 1 do
        let tr = enabled.(k) in
        let q1 = z.Mfsa.row.(tr) in
        let has_cur = s.cur_stamp.(q1) = s.generation in
        let init_b = inits.(q1) in
        if has_cur || not (Bitset.is_empty init_b) then begin
          Bitset.clear s.s_scratch;
          if has_cur then ignore (Bitset.union_into ~dst:s.s_scratch s.cur_sets.(q1));
          ignore (Bitset.union_into ~dst:s.s_scratch init_b);
          Bitset.inter_into ~dst:s.s_scratch z.Mfsa.bel.(tr);
          if not (Bitset.is_empty s.s_scratch) then begin
            let q2 = z.Mfsa.col.(tr) in
            if s.next_stamp.(q2) <> s.generation + 1 then begin
              s.next_stamp.(q2) <- s.generation + 1;
              Bitset.clear s.next_sets.(q2)
            end;
            ignore (Bitset.union_into ~dst:s.next_sets.(q2) s.s_scratch);
            Bitset.clear s.s_match;
            ignore (Bitset.union_into ~dst:s.s_match s.s_scratch);
            Bitset.inter_into ~dst:s.s_match z.Mfsa.final_sets.(q2);
            Bitset.iter
              (fun j ->
                if not (Bitset.mem s.s_reported j) then begin
                  Bitset.add s.s_reported j;
                  if z.Mfsa.anchored_end.(j) then
                    s.pending_end <- j :: s.pending_end
                  else acc := { fsa = j; end_pos = s.pos + 1 } :: !acc
                end)
              s.s_match
          end
        end
      done;
      let tmp_sets = s.cur_sets and tmp_stamp = s.cur_stamp in
      s.cur_sets <- s.next_sets;
      s.cur_stamp <- s.next_stamp;
      s.next_sets <- tmp_sets;
      s.next_stamp <- tmp_stamp;
      s.generation <- s.generation + 1;
      s.pos <- s.pos + 1)
    chunk;
  List.rev !acc

let finish s =
  List.sort Int.compare s.pending_end
  |> List.map (fun j -> { fsa = j; end_pos = s.pos })

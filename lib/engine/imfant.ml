module Mfsa = Mfsa_model.Mfsa
module Charclass = Mfsa_charset.Charclass
module Bitset = Mfsa_util.Bitset
module Vec = Mfsa_util.Vec

type t = {
  z : Mfsa.t;
  trans_by_sym : int array array;
      (* [trans_by_sym.(c)] = transition indices enabled by byte c. *)
  csr : (int array * int array) Lazy.t;
      (* Row-indexed CSR (off, tr) over (state, byte) cells: the
         transitions leaving state q on byte c are
         [tr.(off.(q*256+c) .. off.(q*256+c+1)-1)]; [off] has length
         n_states*256+1. Only the hybrid engine's miss path reads it,
         and the offset array alone costs ~2 KiB per state, so it is
         built on first force — imfant-only users (notably Live,
         which recompiles an engine per generation) never pay it. *)
  anchored_end_mask : Bitset.t;
      (* FSAs whose matches may only end at end-of-input. *)
  any_end_anchor : bool;
  init_all : Bitset.t array;
      (* Per-state initial sets at position 0 (aliases z.init_sets). *)
  init_unanch : Bitset.t array;
      (* Same minus the start-anchored FSAs: positions > 0. Both are
         read-only once built. *)
}

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

type stats = { positions : int; avg_active : float; max_active : int }

let compile (z : Mfsa.t) =
  let by_sym = Array.init 256 (fun _ -> Vec.create ()) in
  Array.iteri
    (fun t cls ->
      Charclass.iter (fun c -> Vec.push by_sym.(Char.code c) t) cls)
    z.Mfsa.idx;
  (* CSR by (source state, byte): counting sort of the same entries
     trans_by_sym holds, keyed by row(t)*256+c instead of c. *)
  let csr =
    lazy
      (let n_cells = z.Mfsa.n_states * 256 in
       let csr_off = Array.make (n_cells + 1) 0 in
       Array.iteri
         (fun t cls ->
           let base = z.Mfsa.row.(t) * 256 in
           Charclass.iter
             (fun c ->
               let cell = base + Char.code c in
               csr_off.(cell + 1) <- csr_off.(cell + 1) + 1)
             cls)
         z.Mfsa.idx;
       for cell = 0 to n_cells - 1 do
         csr_off.(cell + 1) <- csr_off.(cell + 1) + csr_off.(cell)
       done;
       let csr_tr = Array.make csr_off.(n_cells) 0 in
       let cursor = Array.copy csr_off in
       Array.iteri
         (fun t cls ->
           let base = z.Mfsa.row.(t) * 256 in
           Charclass.iter
             (fun c ->
               let cell = base + Char.code c in
               csr_tr.(cursor.(cell)) <- t;
               cursor.(cell) <- cursor.(cell) + 1)
             cls)
         z.Mfsa.idx;
       (csr_off, csr_tr))
  in
  let anchored_end_mask = Bitset.create z.Mfsa.n_fsas in
  Array.iteri
    (fun j anchored -> if anchored then Bitset.add anchored_end_mask j)
    z.Mfsa.anchored_end;
  (* Per-state initial sets, split by anchoring: at position 0 every
     FSA may start; afterwards only the unanchored ones. Built once
     here (they used to be rebuilt — n_states bitset copies — on every
     execute call). *)
  let init_unanch =
    Array.init z.Mfsa.n_states (fun q -> Bitset.copy z.Mfsa.init_sets.(q))
  in
  Array.iteri
    (fun j anchored ->
      if anchored then Bitset.remove init_unanch.(z.Mfsa.init_of.(j)) j)
    z.Mfsa.anchored_start;
  {
    z;
    trans_by_sym = Array.map Vec.to_array by_sym;
    csr;
    anchored_end_mask;
    any_end_anchor = not (Bitset.is_empty anchored_end_mask);
    init_all = z.Mfsa.init_sets;
    init_unanch;
  }

let mfsa t = t.z

let csr t = Lazy.force t.csr

let init_tables t = (t.init_all, t.init_unanch)

(* Engine core. [on_match] receives each (fsa, end position) pair
   exactly once, end positions in increasing order. [track] switches
   the Table II active-set instrumentation on. *)
let execute t input ~on_match ~track =
  let z = t.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let init_all, init_unanch = init_tables t in
  let cur_sets = Array.init n (fun _ -> Bitset.create nf) in
  let next_sets = Array.init n (fun _ -> Bitset.create nf) in
  (* Epoch-stamped activity: state q is active in generation g iff
     stamp.(q) = g. Bumping the generation deactivates every state in
     O(1), instead of clearing an n-sized vector per input byte. *)
  let cur_stamp = Array.make n (-1) in
  let next_stamp = Array.make n (-1) in
  let scratch = Bitset.create nf in
  let match_now = Bitset.create nf in
  let reported = Bitset.create nf in
  let activity = Bitset.create nf in
  let sum_active = ref 0 in
  let max_active = ref 0 in
  let len = String.length input in
  (* Mutable swap targets. *)
  let cur_sets = ref cur_sets and next_sets = ref next_sets in
  let cur_stamp = ref cur_stamp and next_stamp = ref next_stamp in
  let generation = ref 0 in
  for i = 0 to len - 1 do
    let c = Char.code input.[i] in
    let enabled = t.trans_by_sym.(c) in
    let inits = if i = 0 then init_all else init_unanch in
    Bitset.clear reported;
    if track then Bitset.clear activity;
    for k = 0 to Array.length enabled - 1 do
      let tr = enabled.(k) in
      let s = z.Mfsa.row.(tr) in
      let has_cur = !cur_stamp.(s) = !generation in
      let init_b = inits.(s) in
      if has_cur || not (Bitset.is_empty init_b) then begin
        (* J' = (J(q1) ∪ init(q1)) ∩ bel(t)  — Equations 4 and 6. *)
        Bitset.clear scratch;
        if has_cur then ignore (Bitset.union_into ~dst:scratch !cur_sets.(s));
        ignore (Bitset.union_into ~dst:scratch init_b);
        Bitset.inter_into ~dst:scratch z.Mfsa.bel.(tr);
        if not (Bitset.is_empty scratch) then begin
          let d = z.Mfsa.col.(tr) in
          if !next_stamp.(d) <> !generation + 1 then begin
            !next_stamp.(d) <- !generation + 1;
            Bitset.clear !next_sets.(d)
          end;
          ignore (Bitset.union_into ~dst:!next_sets.(d) scratch);
          if track then ignore (Bitset.union_into ~dst:activity scratch);
          (* Equation 5: matches for the FSAs final in q2 ∩ J'. *)
          Bitset.clear match_now;
          ignore (Bitset.union_into ~dst:match_now scratch);
          Bitset.inter_into ~dst:match_now z.Mfsa.final_sets.(d);
          if not (Bitset.is_empty match_now) then
            Bitset.iter
              (fun j ->
                if
                  (not (Bitset.mem reported j))
                  && ((not z.Mfsa.anchored_end.(j)) || i + 1 = len)
                then begin
                  Bitset.add reported j;
                  on_match j (i + 1)
                end)
              match_now
        end
      end
    done;
    if track then begin
      let a = Bitset.cardinal activity in
      sum_active := !sum_active + a;
      if a > !max_active then max_active := a
    end;
    (* Swap the state vectors; advancing the generation deactivates
       the previous one without touching memory. *)
    let tmp_sets = !cur_sets and tmp_stamp = !cur_stamp in
    cur_sets := !next_sets;
    cur_stamp := !next_stamp;
    next_sets := tmp_sets;
    next_stamp := tmp_stamp;
    incr generation
  done;
  let positions = len in
  {
    positions;
    avg_active =
      (if positions = 0 then 0.
       else float_of_int !sum_active /. float_of_int positions);
    max_active = !max_active;
  }

let run t input =
  let acc = ref [] in
  let _ = execute t input ~track:false ~on_match:(fun fsa e -> acc := { fsa; end_pos = e } :: !acc) in
  List.rev !acc

let count t input =
  let c = ref 0 in
  let _ = execute t input ~track:false ~on_match:(fun _ _ -> incr c) in
  !c

let run_with_stats t input =
  let acc = ref [] in
  let stats =
    execute t input ~track:true ~on_match:(fun fsa e ->
        acc := { fsa; end_pos = e } :: !acc)
  in
  (List.rev !acc, stats)

let count_per_fsa t input =
  let counts = Array.make t.z.Mfsa.n_fsas 0 in
  let _ =
    execute t input ~track:false ~on_match:(fun fsa _ ->
        counts.(fsa) <- counts.(fsa) + 1)
  in
  counts

(* ------------------------------------------------------- Streaming *)

type session = {
  eng : t;
  init_all : Bitset.t array;
  init_unanch : Bitset.t array;
  mutable cur_sets : Bitset.t array;
  mutable next_sets : Bitset.t array;
  mutable cur_stamp : int array;
  mutable next_stamp : int array;
  mutable generation : int;
  s_scratch : Bitset.t;
  s_match : Bitset.t;
  s_reported : Bitset.t;
  mutable pos : int;
  mutable pending_end : int list;
      (* end-anchored FSAs matched exactly at [pos]; flushed by
         [finish], discarded whenever the stream continues *)
}

let session eng =
  let z = eng.z in
  let n = z.Mfsa.n_states and nf = z.Mfsa.n_fsas in
  let init_all, init_unanch = init_tables eng in
  {
    eng;
    init_all;
    init_unanch;
    cur_sets = Array.init n (fun _ -> Bitset.create nf);
    next_sets = Array.init n (fun _ -> Bitset.create nf);
    cur_stamp = Array.make n (-1);
    next_stamp = Array.make n (-1);
    generation = 0;
    s_scratch = Bitset.create nf;
    s_match = Bitset.create nf;
    s_reported = Bitset.create nf;
    pos = 0;
    pending_end = [];
  }

let reset s =
  let n = s.eng.z.Mfsa.n_states in
  Array.fill s.cur_stamp 0 n (-1);
  Array.fill s.next_stamp 0 n (-1);
  s.generation <- 0;
  s.pos <- 0;
  s.pending_end <- []

let position s = s.pos

let feed s chunk =
  let z = s.eng.z in
  let acc = ref [] in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      (* Any continuation invalidates matches that were waiting for
         end-of-stream. *)
      s.pending_end <- [];
      let enabled = s.eng.trans_by_sym.(c) in
      let inits = if s.pos = 0 then s.init_all else s.init_unanch in
      Bitset.clear s.s_reported;
      for k = 0 to Array.length enabled - 1 do
        let tr = enabled.(k) in
        let q1 = z.Mfsa.row.(tr) in
        let has_cur = s.cur_stamp.(q1) = s.generation in
        let init_b = inits.(q1) in
        if has_cur || not (Bitset.is_empty init_b) then begin
          Bitset.clear s.s_scratch;
          if has_cur then ignore (Bitset.union_into ~dst:s.s_scratch s.cur_sets.(q1));
          ignore (Bitset.union_into ~dst:s.s_scratch init_b);
          Bitset.inter_into ~dst:s.s_scratch z.Mfsa.bel.(tr);
          if not (Bitset.is_empty s.s_scratch) then begin
            let q2 = z.Mfsa.col.(tr) in
            if s.next_stamp.(q2) <> s.generation + 1 then begin
              s.next_stamp.(q2) <- s.generation + 1;
              Bitset.clear s.next_sets.(q2)
            end;
            ignore (Bitset.union_into ~dst:s.next_sets.(q2) s.s_scratch);
            Bitset.clear s.s_match;
            ignore (Bitset.union_into ~dst:s.s_match s.s_scratch);
            Bitset.inter_into ~dst:s.s_match z.Mfsa.final_sets.(q2);
            Bitset.iter
              (fun j ->
                if not (Bitset.mem s.s_reported j) then begin
                  Bitset.add s.s_reported j;
                  if z.Mfsa.anchored_end.(j) then
                    s.pending_end <- j :: s.pending_end
                  else acc := { fsa = j; end_pos = s.pos + 1 } :: !acc
                end)
              s.s_match
          end
        end
      done;
      let tmp_sets = s.cur_sets and tmp_stamp = s.cur_stamp in
      s.cur_sets <- s.next_sets;
      s.cur_stamp <- s.next_stamp;
      s.next_sets <- tmp_sets;
      s.next_stamp <- tmp_stamp;
      s.generation <- s.generation + 1;
      s.pos <- s.pos + 1)
    chunk;
  List.rev !acc

let finish s =
  List.sort Int.compare s.pending_end
  |> List.map (fun j -> { fsa = j; end_pos = s.pos })

(* SFA-style intra-input parallelism (Sin'ya & Matsuzaki,
   "Simultaneous Finite Automata") over the merged-automaton engines.

   One input is cut into [domains] contiguous chunks. Each chunk runs
   an injection-driven local pass on its own domain — exactly the
   sequential engine restricted to the window, so it finds every match
   whose threads were injected inside the chunk ([Imfant.run_chunk] /
   [Hybrid.run_chunk]) and produces the chunk's carry-out boundary
   configuration. Because the per-byte step distributes over
   thread-set union, the sequential state at a boundary is
   local-carry ∪ (carry-in stepped with no injection); the join is
   therefore a left-to-right pass that steps each boundary's carried
   configuration through the next chunk ([Imfant.carry_step]),
   reporting the matches carried threads complete and dying out — with
   a prefilter, usually within a few bytes — so cold boundaries
   resolve in O(1). Events from the local passes and the fix-ups are
   deduplicated per (fsa, end position) and sorted; the result is
   byte-identical to the sequential engine's match set.

   The hybrid inner engine keeps one replica per chunk slot (chunk i
   always runs on replica i, so its memo cache stays warm across
   runs); the imfant inner engine shares one read-only table set
   across all domains. The shared [Imfant.t] also serves the
   sequential path — inputs below the threshold, and streaming
   sessions, which by nature already arrive in chunks. *)

module Mfsa = Mfsa_model.Mfsa
module Bitset = Mfsa_util.Bitset
module Snapshot = Mfsa_obs.Snapshot

type match_event = Engine_sig.match_event = { fsa : int; end_pos : int }

(* ------------------------------------------------------------ Spec *)

type spec = { domains : int; threshold : int }

let default = { domains = 2; threshold = 1 lsl 20 }

let max_domains = 64

let prefix = "sfa"

let starts_with ~p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let parse_param cfg kv =
  match String.index_opt kv '=' with
  | None -> Error (Printf.sprintf "parameter %S is not key=value" kv)
  | Some i -> (
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      match key with
      | "domains" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 && n <= max_domains ->
              Ok { cfg with domains = n }
          | _ ->
              Error
                (Printf.sprintf "domains wants an integer in [1,%d], got %S"
                   max_domains v))
      | "threshold" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> Ok { cfg with threshold = n }
          | _ ->
              Error
                (Printf.sprintf
                   "threshold wants a positive byte count, got %S" v))
      | _ ->
          Error
            (Printf.sprintf "unknown parameter %S (expected domains, threshold)"
               key))

let parse_params s =
  if s = "" then Ok default
  else
    List.fold_left
      (fun acc kv -> Result.bind acc (fun cfg -> parse_param cfg (String.trim kv)))
      (Ok default)
      (String.split_on_char ',' s)

let split_spec name =
  if not (starts_with ~p:prefix name) then None
  else
    let rest =
      String.sub name (String.length prefix)
        (String.length name - String.length prefix)
    in
    if rest = "" then None
    else if rest.[0] = ':' then
      let inner = String.sub rest 1 (String.length rest - 1) in
      if inner = "" then Some (Error "missing inner engine after ':'")
      else Some (Ok (default, inner))
    else if rest.[0] = '{' then
      match String.index_opt rest '}' with
      | None -> Some (Error "unterminated '{' in parameters")
      | Some j ->
          let params = String.sub rest 1 (j - 1) in
          let tail = String.sub rest (j + 1) (String.length rest - j - 1) in
          if String.length tail < 2 || tail.[0] <> ':' then
            Some (Error "sfa{...} must be followed by ':<engine>'")
          else
            Some
              (Result.map
                 (fun cfg -> (cfg, String.sub tail 1 (String.length tail - 1)))
                 (parse_params params))
    else None

(* ---------------------------------------------------------- Engine *)

type kind =
  | Im  (* chunk passes share the read-only imfant tables *)
  | Hy of Hybrid.t array * Hybrid.t
      (* per-chunk-slot replicas; the extra engine serves the
         sequential path and sessions, keeping the slot caches warm *)

type t = {
  im : Imfant.t;
  kind : kind;
  spec : spec;
  (* Coordinator-domain counters (surfaced as the mfsa_sfa_ series). *)
  mutable runs : int;  (* parallel (chunked) runs *)
  mutable seq_runs : int;  (* inputs below the threshold *)
  mutable chunks : int;
  mutable fixup_bytes : int;  (* bytes the join fix-ups consumed *)
  mutable carry_dead : int;  (* boundaries whose carry-in was empty *)
  mutable carry_live : int;
  mutable skipped : int;  (* prefilter skips inside imfant chunk passes *)
}

let validate spec =
  if spec.domains < 1 || spec.domains > max_domains then
    invalid_arg
      (Printf.sprintf "Sfa: domains must be in [1,%d], got %d" max_domains
         spec.domains);
  if spec.threshold < 1 then
    invalid_arg
      (Printf.sprintf "Sfa: threshold must be positive, got %d" spec.threshold)

let of_imfant spec ~inner im =
  validate spec;
  (* Force the lazy CSR before any domain is spawned: the join fix-up
     needs it, and a Lazy.t must not race across domains. *)
  ignore (Imfant.csr im);
  let kind =
    match inner with
    | "imfant" -> Im
    | "hybrid" ->
        Hy
          ( Array.init spec.domains (fun _ -> Hybrid.of_imfant im),
            Hybrid.of_imfant im )
    | other ->
        invalid_arg
          (Printf.sprintf "Sfa: inner engine must be imfant or hybrid, got %S"
             other)
  in
  {
    im;
    kind;
    spec;
    runs = 0;
    seq_runs = 0;
    chunks = 0;
    fixup_bytes = 0;
    carry_dead = 0;
    carry_live = 0;
    skipped = 0;
  }

let compile spec ~inner z = of_imfant spec ~inner (Imfant.compile z)

let of_tables spec ~inner tb = of_imfant spec ~inner (Imfant.of_tables tb)

let export_tables t = Imfant.export_tables t.im

let mfsa t = Imfant.mfsa t.im

let spec t = t.spec

(* --------------------------------------------------------- Running *)

(* Contiguous chunk boundaries: bounds.(i) .. bounds.(i+1). Inputs
   shorter than the domain count produce empty chunks, which carry
   nothing and join as the identity. *)
let chunk_bounds len d = Array.init (d + 1) (fun i -> i * len / d)

let cmp_ev (f1, e1) (f2, e2) =
  if e1 <> e2 then Int.compare e1 e2 else Int.compare f1 f2

(* One chunk-local pass; returns (events reversed, carry-out). Safe to
   run on any domain: Im reads the shared tables only, Hy mutates its
   slot-private replica. *)
let chunk_pass t input ~slot ~start ~stop =
  let acc = ref [] in
  let on_match fsa e = acc := (fsa, e) :: !acc in
  match t.kind with
  | Im ->
      let carry, skipped = Imfant.run_chunk t.im input ~start ~stop ~on_match in
      (!acc, carry, skipped)
  | Hy (reps, _) ->
      let carry = Hybrid.run_chunk reps.(slot) input ~start ~stop ~on_match in
      (!acc, carry, 0)

(* The left-to-right join over the per-chunk results: step each
   boundary's carry-in through the next chunk with no injection,
   collect the matches carried threads complete, and fold the final
   event set. Runs on the calling (coordinating) domain. *)
let join t input bounds results =
  let d = Array.length results in
  let events = ref [] in
  let carry = ref Imfant.empty_carry in
  for i = 0 to d - 1 do
    let local_events, local_carry, skipped = results.(i) in
    t.skipped <- t.skipped + skipped;
    List.iter (fun ev -> events := ev :: !events) local_events;
    if i > 0 then begin
      let states, _ = !carry in
      if Array.length states = 0 then t.carry_dead <- t.carry_dead + 1
      else begin
        t.carry_live <- t.carry_live + 1;
        let stepped, consumed =
          Imfant.carry_step t.im !carry input ~start:bounds.(i)
            ~stop:bounds.(i + 1)
            ~on_match:(fun fsa e -> events := (fsa, e) :: !events)
        in
        t.fixup_bytes <- t.fixup_bytes + consumed;
        carry := stepped
      end
    end;
    carry := Imfant.carry_union local_carry !carry
  done;
  List.sort_uniq cmp_ev !events
  |> List.map (fun (fsa, end_pos) -> { fsa; end_pos })

let run_chunked t input =
  let len = String.length input in
  let d = t.spec.domains in
  let bounds = chunk_bounds len d in
  let results = Array.make d ([], Imfant.empty_carry, 0) in
  let workers =
    Array.init (d - 1) (fun j ->
        Domain.spawn (fun () ->
            chunk_pass t input ~slot:(j + 1) ~start:bounds.(j + 1)
              ~stop:bounds.(j + 2)))
  in
  results.(0) <- chunk_pass t input ~slot:0 ~start:0 ~stop:bounds.(1);
  Array.iteri (fun j w -> results.(j + 1) <- Domain.join w) workers;
  t.runs <- t.runs + 1;
  t.chunks <- t.chunks + d;
  join t input bounds results

let run_seq t input =
  t.seq_runs <- t.seq_runs + 1;
  let evs =
    match t.kind with
    | Im -> Imfant.run t.im input
    | Hy (_, seq) -> Hybrid.run seq input
  in
  (* Both inner engines report (end position, fsa)-ordered events; the
     sort is a no-op kept so the two paths share one documented
     order. *)
  List.stable_sort
    (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.fsa b.fsa)
    evs

let chunked t input =
  t.spec.domains >= 2 && String.length input >= t.spec.threshold

let run t input =
  if chunked t input then run_chunked t input else run_seq t input

let count t input = List.length (run t input)

let count_per_fsa t input =
  let counts = Array.make (mfsa t).Mfsa.n_fsas 0 in
  List.iter (fun e -> counts.(e.fsa) <- counts.(e.fsa) + 1) (run t input);
  counts

(* ------------------------------------------------- Span measurement *)

(* The same chunk passes run sequentially on the calling domain, each
   individually timed: span = max chunk time + join time is the
   critical path a machine with [domains] free cores would see. The
   benches gate on it because wall clock on a core-starved box (CI
   containers included) measures the scheduler, not the
   decomposition; [run] above is still the real parallel path and is
   what agreement is checked against. *)
type timing = { chunk_s : float array; join_s : float }

let run_span t input =
  let len = String.length input in
  let d = t.spec.domains in
  let bounds = chunk_bounds len d in
  let results = Array.make d ([], Imfant.empty_carry, 0) in
  let chunk_s = Array.make d 0. in
  for slot = 0 to d - 1 do
    let t0 = Unix.gettimeofday () in
    results.(slot) <-
      chunk_pass t input ~slot ~start:bounds.(slot) ~stop:bounds.(slot + 1);
    chunk_s.(slot) <- Unix.gettimeofday () -. t0
  done;
  t.runs <- t.runs + 1;
  t.chunks <- t.chunks + d;
  let t0 = Unix.gettimeofday () in
  let events = join t input bounds results in
  let join_s = Unix.gettimeofday () -. t0 in
  (events, { chunk_s; join_s })

(* ------------------------------------------------------------- Obs *)

let stats ~engine t =
  let labels = [ ("engine", engine) ] in
  let z = Imfant.mfsa t.im in
  [
    Snapshot.gauge_i ~labels ~help:"States in the compiled automaton"
      "mfsa_engine_states" z.Mfsa.n_states;
    Snapshot.gauge_i ~labels ~help:"Transitions in the compiled automaton"
      "mfsa_engine_transitions" (Mfsa.n_transitions z);
    Snapshot.counter_i ~labels ~help:"Inputs run through the chunked SFA path"
      "mfsa_sfa_runs_total" t.runs;
    Snapshot.counter_i ~labels
      ~help:"Inputs below the split threshold, run sequentially"
      "mfsa_sfa_seq_runs_total" t.seq_runs;
    Snapshot.counter_i ~labels ~help:"Chunk-local passes executed"
      "mfsa_sfa_chunks_total" t.chunks;
    Snapshot.counter_i ~labels
      ~help:"Bytes the join fix-ups stepped carried configurations through"
      "mfsa_sfa_fixup_bytes_total" t.fixup_bytes;
    Snapshot.counter_i ~labels
      ~help:"Chunk boundaries whose carry-in was already empty (O(1) join)"
      "mfsa_sfa_carry_dead_total" t.carry_dead;
    Snapshot.counter_i ~labels
      ~help:"Chunk boundaries joined by stepping a live carried configuration"
      "mfsa_sfa_carry_live_total" t.carry_live;
    Snapshot.counter_i ~labels
      ~help:"Bytes the literal prefilter skipped inside chunk passes"
      "mfsa_sfa_prefilter_skipped_bytes_total"
      (t.skipped
      + (match t.kind with
        | Im -> 0
        | Hy (reps, _) ->
            Array.fold_left
              (fun acc h -> acc + (Hybrid.stats h).Hybrid.skipped_bytes)
              0 reps));
    Snapshot.gauge_i ~labels ~help:"Chunk slots (domains) per oversized input"
      "mfsa_sfa_domains" t.spec.domains;
    Snapshot.gauge_i ~labels
      ~help:"Input bytes above which a run is chunked across domains"
      "mfsa_sfa_threshold_bytes" t.spec.threshold;
  ]

let reset_counters t =
  t.runs <- 0;
  t.seq_runs <- 0;
  t.chunks <- 0;
  t.fixup_bytes <- 0;
  t.carry_dead <- 0;
  t.carry_live <- 0;
  t.skipped <- 0

let reset_stats t =
  reset_counters t;
  Imfant.reset_skipped t.im;
  match t.kind with
  | Im -> ()
  | Hy (reps, seq) ->
      Array.iter
        (fun h ->
          Hybrid.promote h;
          Hybrid.flush h;
          Hybrid.reset_stats h)
        reps;
      Hybrid.promote seq;
      Hybrid.flush seq;
      Hybrid.reset_stats seq

(* ------------------------------------------------------- Streaming *)

(* Streams already arrive chunked by the transport; a session is a
   sequential inner session — the SFA split applies to oversized
   single buffers, not to feeds. *)
type session = S_im of Imfant.session | S_hy of Hybrid.session

let session t =
  match t.kind with
  | Im -> S_im (Imfant.session t.im)
  | Hy (_, seq) -> S_hy (Hybrid.session seq)

let feed s chunk =
  match s with
  | S_im s -> Imfant.feed s chunk
  | S_hy s -> Hybrid.feed s chunk

let finish = function
  | S_im s -> Imfant.finish s
  | S_hy s -> Hybrid.finish s

let reset = function S_im s -> Imfant.reset s | S_hy s -> Hybrid.reset s

let position = function
  | S_im s -> Imfant.position s
  | S_hy s -> Hybrid.position s

(* ------------------------------------------------ Registry wrapper *)

let make ~name:full_name (cfg : spec) ~inner : (module Engine_sig.S) =
  (module struct
    let name = full_name

    let doc =
      Printf.sprintf
        "SFA intra-input parallel wrapper (%d domains, split at %d B) over \
         the %s engine"
        cfg.domains cfg.threshold inner

    type compiled = t

    let compile z = compile cfg ~inner z

    let of_tables = Some (fun tb -> of_tables cfg ~inner tb)

    let to_tables c = Some (export_tables c)

    let mfsa = mfsa

    let run = run

    let count = count

    let count_per_fsa = count_per_fsa

    let stats c = stats ~engine:full_name c

    let reset_stats = reset_stats

    let reset_counters = reset_counters

    type nonrec session = session

    let session = session

    let feed = feed

    let finish = finish

    let reset = reset

    let position = position
  end)

(** Engine-ready tables, bundled for persistence.

    A value of this type is the complete compiled state of the
    transition-centric engine ({!Imfant}) minus its mutable scratch:
    the automaton, the hot-loop tuning that was in force when the
    tables were derived, the byte-class alphabet, the class-indexed
    transition tables, the (state, class) CSR index, the activation
    (init) table for unanchored positions, and the literal prefilter.
    {!Imfant.export_tables} produces one; {!Imfant.of_tables} and
    {!Hybrid.of_tables} adopt one in O(size of the tables) — no
    re-derivation, which is what makes artifact loading cheap.

    Everything here is treated as read-only by the engines that adopt
    it; the arrays may be shared between engine instances (the serving
    layer compiles one replica per domain from one shared bundle). *)

type t = {
  z : Mfsa_model.Mfsa.t;
  tuning : Tuning.t;
      (** The knobs snapshotted when the tables were derived — adopted
          engines bake these in, not the current global tuning. *)
  n_classes : int;
  class_of : bytes;  (** 256-entry byte → class map. *)
  trans_by_cls : int array array;
      (** Per class, the transition indices its bytes enable. *)
  csr : (int array * int array) option;
      (** [(off, tr)] row-indexed by (state, class) — see
          {!Imfant.csr}. [None] means "derive lazily on demand". *)
  init_unanch : Mfsa_util.Bitset.t array;
      (** Per-state initial FSA sets at positions > 0 (start-anchored
          FSAs removed) — the activation table of {!Imfant.init_tables}. *)
  prefilter : Prefilter.t option;
}

module Nfa = Mfsa_automata.Nfa
module Ast = Mfsa_frontend.Ast
module Parser = Mfsa_frontend.Parser
module Charclass = Mfsa_charset.Charclass

type match_event = { rule : int; end_pos : int }

(* Literal-prefix analysis. [Exact s] means L(t) = {s}; [Prefix p]
   means every string of L(t) starts with [p] (and nothing stronger is
   claimed). *)
type shape = Exact of string | Prefix of string

let payload = function Exact s | Prefix s -> s

let longest_common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  String.sub a 0 (go 0)

let rec shape = function
  | Ast.Empty -> Exact ""
  | Ast.Char c -> Exact (String.make 1 c)
  | Ast.Class cls -> (
      match Charclass.is_singleton cls with
      | Some c -> Exact (String.make 1 c)
      | None -> Prefix "")
  | Ast.Concat (a, b) -> (
      match shape a with
      | Exact sa -> (
          match shape b with
          | Exact sb -> Exact (sa ^ sb)
          | Prefix pb -> Prefix (sa ^ pb))
      | Prefix pa -> Prefix pa)
  | Ast.Alt (a, b) -> (
      match (shape a, shape b) with
      | Exact sa, Exact sb when String.equal sa sb -> Exact sa
      | sa, sb -> Prefix (longest_common_prefix (payload sa) (payload sb)))
  | Ast.Star _ | Ast.Opt _ -> Prefix ""
  | Ast.Plus a -> Prefix (payload (shape a))
  | Ast.Repeat (_, 0, _) -> Prefix ""
  | Ast.Repeat (a, m, bound) -> (
      match shape a with
      | Exact s ->
          let rep = String.concat "" (List.init m (fun _ -> s)) in
          if bound = Some m then Exact rep else Prefix rep
      | Prefix p -> Prefix p)

let literal_prefix ast = payload (shape ast)

type rule_engine = {
  index : int;
  engine : Infant.t;
  prefix : string;  (* "" on the fallback path *)
}

type t = {
  prefiltered : rule_engine array;
  fallback : rule_engine array;
  filter : Aho_corasick.t option;  (* over prefiltered prefixes *)
}

(* Minimum prefix selectivity: one-byte prefixes fire on ~1/256 of the
   stream and make the pre-filter pure overhead. *)
let min_prefix = 2

let anchored_copy (a : Nfa.t) =
  Nfa.create ~n_states:a.Nfa.n_states
    ~transitions:(Array.to_list a.Nfa.transitions)
    ~start:a.Nfa.start ~finals:(Nfa.final_states a) ~anchored_start:true
    ~anchored_end:a.Nfa.anchored_end ~pattern:a.Nfa.pattern ()

let compile fsas =
  Array.iter
    (fun a ->
      if not (Nfa.is_eps_free a) then
        invalid_arg "Decomposed.compile: automata must be ε-free")
    fsas;
  let prefiltered = ref [] and fallback = ref [] in
  Array.iteri
    (fun index a ->
      let prefix =
        if a.Nfa.anchored_start then ""
        else
          match Parser.parse a.Nfa.pattern with
          | Ok rule -> literal_prefix rule.Ast.ast
          | Error _ -> ""
      in
      if String.length prefix >= min_prefix then
        prefiltered :=
          { index; engine = Infant.compile (anchored_copy a); prefix }
          :: !prefiltered
      else fallback := { index; engine = Infant.compile a; prefix = "" } :: !fallback)
    fsas;
  let prefiltered = Array.of_list (List.rev !prefiltered) in
  let filter =
    if Array.length prefiltered = 0 then None
    else Some (Aho_corasick.build (Array.map (fun r -> r.prefix) prefiltered))
  in
  { prefiltered; fallback = Array.of_list (List.rev !fallback); filter }

let n_prefiltered t = Array.length t.prefiltered

let n_fallback t = Array.length t.fallback

let run t input =
  let events = ref [] in
  let seen = Hashtbl.create 64 in
  let emit rule end_pos =
    if not (Hashtbl.mem seen (rule, end_pos)) then begin
      Hashtbl.add seen (rule, end_pos) ();
      events := { rule; end_pos } :: !events
    end
  in
  (* Fallback rules: conventional full scans. *)
  Array.iter
    (fun r -> List.iter (fun e -> emit r.index e) (Infant.run r.engine input))
    t.fallback;
  (* Pre-filtered rules: one AC pass finds every prefix occurrence;
     each occurrence anchors one confirmation run of the rule's
     automaton over the remaining suffix. *)
  (match t.filter with
  | None -> ()
  | Some filter ->
      let len = String.length input in
      List.iter
        (fun { Aho_corasick.pattern = pi; end_pos } ->
          let r = t.prefiltered.(pi) in
          let start = end_pos - String.length r.prefix in
          let suffix = String.sub input start (len - start) in
          List.iter
            (fun e -> emit r.index (start + e))
            (Infant.run r.engine suffix))
        (Aho_corasick.run filter input));
  List.sort
    (fun a b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.rule b.rule)
    !events

let count t input = List.length (run t input)

(** The wire protocol of [mfsa-served].

    A simple length-prefixed binary framing over TCP, symmetric in
    both directions. Every frame is

    {v
      offset  size  field
      0       4     magic   "MFSA"
      4       1     version 0x01
      5       1     opcode
      6       4     payload length N (big-endian u32)
      10      N     payload
    v}

    and every multi-byte integer inside a payload is big-endian.
    Strings (inputs, patterns, metrics bodies) are a u32 length
    followed by raw bytes — they are binary-safe, there is no quoting
    layer anywhere.

    The payload grammar per opcode lives in the {!request}/{!response}
    encoders below; both directions round-trip exactly
    ([request_of_frame (request_to_frame r) = Ok r], the property the
    test suite checks), and a decoder rejects trailing bytes, so a
    frame means one thing or is {!Malformed} — never "mostly parsed".

    Errors are typed ({!error_code}): the framing errors a server
    answers just before closing the connection ({!Bad_magic},
    {!Bad_version}, {!Bad_opcode}, {!Frame_too_large}, {!Malformed},
    {!Deadline}), the {!Mfsa_serve.Serve.error} admission outcomes
    mapped onto the wire ({!Closed}, {!Rejected}, {!Timeout}), and
    the request-level failures ({!Compile_failed}, {!Unknown_rule},
    {!Job_failed}). *)

val magic : string
(** ["MFSA"]. *)

val version : int
(** Protocol version, [1]. *)

val header_len : int
(** Bytes of the fixed frame header, [10]. *)

val default_max_payload : int
(** Default per-frame payload bound, 16 MiB. A peer announcing a
    larger frame gets {!Frame_too_large} and the connection is
    closed — the length prefix is attacker-controlled and must never
    drive an allocation unchecked. *)

(** {2 Typed messages} *)

type error_code =
  | Bad_magic  (** Frame header did not start with {!magic}. *)
  | Bad_version  (** Unsupported protocol version. *)
  | Bad_opcode  (** Unknown opcode byte. *)
  | Frame_too_large  (** Announced payload exceeds the receiver's bound. *)
  | Malformed  (** Payload did not parse (truncated, trailing bytes…). *)
  | Deadline  (** The per-connection read deadline expired. *)
  | Closed  (** The service is draining; no new work admitted. *)
  | Rejected  (** Admission control refused the batch. *)
  | Timeout  (** The per-batch serving deadline expired. *)
  | Compile_failed  (** [ADMIN ADD]: the pattern did not compile. *)
  | Unknown_rule  (** [ADMIN REMOVE]: no live rule with that id. *)
  | Job_failed  (** A job raised after exhausting the retry budget. *)

type err = { code : error_code; message : string }

val error_code_to_int : error_code -> int
val error_code_of_int : int -> error_code option
val error_code_to_string : error_code -> string

val err_to_string : err -> string
(** ["<code>: <message>"]. *)

type metrics_format = Prometheus | Json

type admin =
  | Add of string  (** Compile and merge one POSIX-ERE rule. *)
  | Remove of int  (** Retire a rule by stable id. *)
  | List_rules

type request =
  | Ping
  | Submit of string array
      (** A batch of independent inputs; answered by {!Results} with
          one event list per input, in submission order. *)
  | Metrics of metrics_format
  | Admin of admin
  | Shutdown  (** Answered with {!Bye}; the server then drains. *)

type event = { rule : int;  (** Stable rule id. *) end_pos : int }

type response =
  | Pong
  | Results of event list array
  | Metrics_data of string
  | Added of { rule : int; generation : int }
  | Removed of { generation : int }
  | Rule_list of { generation : int; rules : (int * string) list }
  | Bye
  | Error of err

(** {2 Frames} *)

type frame = { opcode : int; payload : string }

val encode_frame : frame -> string
(** Header + payload, ready to write. *)

val decode_header : string -> (int * int, err) result
(** Parse a {!header_len}-byte header into [(opcode, payload_len)];
    checks magic and version (but not the payload bound — that is the
    receiver's policy, see {!read_frame}). *)

val request_to_frame : request -> frame
val response_to_frame : response -> frame

val request_of_frame : frame -> (request, err) result
val response_of_frame : frame -> (response, err) result

(** {2 Blocking frame I/O}

    Helpers over [Unix] file descriptors, shared by the server's
    connection handlers and the client. Reads honour a socket
    [SO_RCVTIMEO] if one is set: an expired timeout surfaces as
    [Fail { code = Deadline; _ }]. *)

type read_result =
  | Frame of frame
  | Eof  (** Clean EOF at a frame boundary. *)
  | Fail of err
      (** Framing failure: bad header, payload over [max_payload],
          EOF mid-frame, or an expired read deadline. *)

val read_frame : ?max_payload:int -> Unix.file_descr -> read_result
(** Blocking read of one whole frame. [max_payload] defaults to
    {!default_max_payload}. *)

val write_frame : Unix.file_descr -> frame -> unit
(** Blocking write of one whole frame. Raises [Unix.Unix_error] as
    usual — [EPIPE] when the peer is gone (the caller handles it; the
    process ignores [SIGPIPE]). *)

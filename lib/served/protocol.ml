let magic = "MFSA"

let version = 1

let header_len = 10

let default_max_payload = 16 * 1024 * 1024

type error_code =
  | Bad_magic
  | Bad_version
  | Bad_opcode
  | Frame_too_large
  | Malformed
  | Deadline
  | Closed
  | Rejected
  | Timeout
  | Compile_failed
  | Unknown_rule
  | Job_failed

type err = { code : error_code; message : string }

(* Wire values are stable protocol surface: framing errors in 1–15,
   admission outcomes in 16–31, request-level failures from 32. *)
let error_code_to_int = function
  | Bad_magic -> 1
  | Bad_version -> 2
  | Bad_opcode -> 3
  | Frame_too_large -> 4
  | Malformed -> 5
  | Deadline -> 6
  | Closed -> 16
  | Rejected -> 17
  | Timeout -> 18
  | Compile_failed -> 32
  | Unknown_rule -> 33
  | Job_failed -> 34

let error_code_of_int = function
  | 1 -> Some Bad_magic
  | 2 -> Some Bad_version
  | 3 -> Some Bad_opcode
  | 4 -> Some Frame_too_large
  | 5 -> Some Malformed
  | 6 -> Some Deadline
  | 16 -> Some Closed
  | 17 -> Some Rejected
  | 18 -> Some Timeout
  | 32 -> Some Compile_failed
  | 33 -> Some Unknown_rule
  | 34 -> Some Job_failed
  | _ -> None

let error_code_to_string = function
  | Bad_magic -> "bad-magic"
  | Bad_version -> "bad-version"
  | Bad_opcode -> "bad-opcode"
  | Frame_too_large -> "frame-too-large"
  | Malformed -> "malformed"
  | Deadline -> "deadline"
  | Closed -> "closed"
  | Rejected -> "rejected"
  | Timeout -> "timeout"
  | Compile_failed -> "compile-failed"
  | Unknown_rule -> "unknown-rule"
  | Job_failed -> "job-failed"

let err_to_string { code; message } =
  if message = "" then error_code_to_string code
  else error_code_to_string code ^ ": " ^ message

type metrics_format = Prometheus | Json

type admin = Add of string | Remove of int | List_rules

type request =
  | Ping
  | Submit of string array
  | Metrics of metrics_format
  | Admin of admin
  | Shutdown

type event = { rule : int; end_pos : int }

type response =
  | Pong
  | Results of event list array
  | Metrics_data of string
  | Added of { rule : int; generation : int }
  | Removed of { generation : int }
  | Rule_list of { generation : int; rules : (int * string) list }
  | Bye
  | Error of err

type frame = { opcode : int; payload : string }

(* -------------------------------------------------------- Opcodes *)

let op_ping = 0x01
let op_submit = 0x02
let op_metrics = 0x03
let op_admin = 0x04
let op_shutdown = 0x05
let op_pong = 0x81
let op_results = 0x82
let op_metrics_data = 0x83
let op_admin_data = 0x84
let op_bye = 0x85
let op_error = 0xFF

(* ------------------------------------------------------- Encoding *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let frame opcode make =
  let b = Buffer.create 64 in
  make b;
  { opcode; payload = Buffer.contents b }

let request_to_frame = function
  | Ping -> { opcode = op_ping; payload = "" }
  | Submit inputs ->
      frame op_submit (fun b ->
          put_u32 b (Array.length inputs);
          Array.iter (put_str b) inputs)
  | Metrics fmt ->
      frame op_metrics (fun b ->
          put_u8 b (match fmt with Prometheus -> 0 | Json -> 1))
  | Admin a ->
      frame op_admin (fun b ->
          match a with
          | Add pattern ->
              put_u8 b 0;
              put_str b pattern
          | Remove id ->
              put_u8 b 1;
              put_u32 b id
          | List_rules -> put_u8 b 2)
  | Shutdown -> { opcode = op_shutdown; payload = "" }

let response_to_frame = function
  | Pong -> { opcode = op_pong; payload = "" }
  | Results per_input ->
      frame op_results (fun b ->
          put_u32 b (Array.length per_input);
          Array.iter
            (fun events ->
              put_u32 b (List.length events);
              List.iter
                (fun { rule; end_pos } ->
                  put_u32 b rule;
                  put_u32 b end_pos)
                events)
            per_input)
  | Metrics_data body -> { opcode = op_metrics_data; payload = body }
  | Added { rule; generation } ->
      frame op_admin_data (fun b ->
          put_u8 b 0;
          put_u32 b rule;
          put_u32 b generation)
  | Removed { generation } ->
      frame op_admin_data (fun b ->
          put_u8 b 1;
          put_u32 b generation)
  | Rule_list { generation; rules } ->
      frame op_admin_data (fun b ->
          put_u8 b 2;
          put_u32 b generation;
          put_u32 b (List.length rules);
          List.iter
            (fun (id, pattern) ->
              put_u32 b id;
              put_str b pattern)
            rules)
  | Bye -> { opcode = op_bye; payload = "" }
  | Error { code; message } ->
      frame op_error (fun b ->
          put_u8 b (error_code_to_int code);
          put_str b message)

let encode_frame { opcode; payload } =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  put_u8 b version;
  put_u8 b opcode;
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------- Decoding *)

exception Bad of err

let bad code fmt = Printf.ksprintf (fun message -> raise (Bad { code; message })) fmt

type cursor = { buf : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.buf then
    bad Malformed "payload truncated at offset %d (need %d more bytes)" c.pos n

let u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let str c =
  let n = u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let decode_header h =
  if String.length h <> header_len then
    Result.Error
      { code = Malformed;
        message = Printf.sprintf "header is %d bytes, want %d" (String.length h)
            header_len }
  else if String.sub h 0 4 <> magic then
    Result.Error { code = Bad_magic; message = "frame does not start with MFSA" }
  else if Char.code h.[4] <> version then
    Result.Error
      { code = Bad_version;
        message =
          Printf.sprintf "protocol version %d, this peer speaks %d"
            (Char.code h.[4]) version }
  else
    let opcode = Char.code h.[5] in
    let len = Int32.to_int (String.get_int32_be h 6) land 0xFFFFFFFF in
    Ok (opcode, len)

(* Decode the whole payload with [f]; trailing bytes are as malformed
   as missing ones — a frame either means exactly one message or
   nothing. *)
let decoding payload f =
  let c = { buf = payload; pos = 0 } in
  match f c with
  | v ->
      if c.pos <> String.length payload then
        Result.Error
          { code = Malformed;
            message =
              Printf.sprintf "%d trailing payload bytes"
                (String.length payload - c.pos) }
      else Ok v
  | exception Bad e -> Result.Error e

let request_of_frame { opcode; payload } =
  decoding payload (fun c ->
      if opcode = op_ping then Ping
      else if opcode = op_submit then begin
        let n = u32 c in
        (* Each input needs at least its 4-byte length prefix: a count
           that cannot fit in the payload is rejected before any
           allocation proportional to it. *)
        if n * 4 > String.length payload then
          bad Malformed "submit announces %d inputs in a %d-byte payload" n
            (String.length payload);
        Submit (Array.init n (fun _ -> str c))
      end
      else if opcode = op_metrics then
        match u8 c with
        | 0 -> Metrics Prometheus
        | 1 -> Metrics Json
        | f -> bad Malformed "unknown metrics format %d" f
      else if opcode = op_admin then
        match u8 c with
        | 0 -> Admin (Add (str c))
        | 1 -> Admin (Remove (u32 c))
        | 2 -> Admin List_rules
        | s -> bad Malformed "unknown admin sub-op %d" s
      else if opcode = op_shutdown then Shutdown
      else bad Bad_opcode "unknown request opcode 0x%02x" opcode)

let response_of_frame { opcode; payload } =
  decoding payload (fun c ->
      if opcode = op_pong then Pong
      else if opcode = op_results then begin
        let n = u32 c in
        if n * 4 > String.length payload then
          bad Malformed "results announce %d inputs in a %d-byte payload" n
            (String.length payload);
        Results
          (Array.init n (fun _ ->
               let k = u32 c in
               if k * 8 > String.length payload then
                 bad Malformed "input announces %d events in a %d-byte payload"
                   k (String.length payload);
               List.init k (fun _ ->
                   let rule = u32 c in
                   let end_pos = u32 c in
                   { rule; end_pos })))
      end
      else if opcode = op_metrics_data then begin
        let body = String.sub c.buf c.pos (String.length c.buf - c.pos) in
        c.pos <- String.length c.buf;
        Metrics_data body
      end
      else if opcode = op_admin_data then
        match u8 c with
        | 0 ->
            let rule = u32 c in
            let generation = u32 c in
            Added { rule; generation }
        | 1 -> Removed { generation = u32 c }
        | 2 ->
            let generation = u32 c in
            let n = u32 c in
            if n * 8 > String.length payload then
              bad Malformed "rule list announces %d rules in a %d-byte payload"
                n (String.length payload);
            Rule_list
              { generation;
                rules =
                  List.init n (fun _ ->
                      let id = u32 c in
                      let pattern = str c in
                      (id, pattern)) }
        | s -> bad Malformed "unknown admin-data sub-op %d" s
      else if opcode = op_bye then Bye
      else if opcode = op_error then begin
        let code_i = u8 c in
        let message = str c in
        match error_code_of_int code_i with
        | Some code -> Error { code; message }
        | None -> bad Malformed "unknown error code %d" code_i
      end
      else bad Bad_opcode "unknown response opcode 0x%02x" opcode)

(* ------------------------------------------------------------ I/O *)

type read_result = Frame of frame | Eof | Fail of err

(* [really_read fd buf] fills [buf] completely. Returns how many bytes
   arrived before a clean EOF; raises on everything else (EINTR is
   retried). *)
let really_read fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame ?(max_payload = default_max_payload) fd =
  try
    let header = Bytes.create header_len in
    match really_read fd header with
    | 0 -> Eof
    | n when n < header_len ->
        Fail
          { code = Malformed;
            message = Printf.sprintf "EOF after %d header bytes" n }
    | _ -> (
        match decode_header (Bytes.to_string header) with
        | Result.Error e -> Fail e
        | Ok (opcode, len) ->
            if len > max_payload then
              Fail
                { code = Frame_too_large;
                  message =
                    Printf.sprintf "announced payload of %d bytes exceeds %d"
                      len max_payload }
            else begin
              let payload = Bytes.create len in
              let n = really_read fd payload in
              if n < len then
                Fail
                  { code = Malformed;
                    message =
                      Printf.sprintf "EOF %d bytes into a %d-byte payload" n len
                  }
              else Frame { opcode; payload = Bytes.to_string payload }
            end)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Fail { code = Deadline; message = "read deadline expired" }
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof

let write_frame fd frame =
  let s = encode_frame frame in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(** Blocking TCP client for the {!Protocol}, shared by [mfsa-served
    ctl], the load generator and the test suite.

    One {!t} is one connection; calls are synchronous request/response
    and therefore {e not} safe from several threads at once — open one
    client per thread (the daemon is happy to accept them all).

    Every helper returns [(_, string) result]: protocol-level errors
    ({!Protocol.err}), unexpected responses and transport failures all
    collapse to a printable message, which is what a CLI or a load
    generator wants. *)

type t

val connect :
  ?read_deadline:float ->
  ?max_frame:int ->
  host:string ->
  port:int ->
  unit ->
  (t, string) result
(** TCP connect (with [TCP_NODELAY]). [read_deadline] (default 30 s,
    [0.] disables) bounds each response wait; [max_frame] (default
    {!Protocol.default_max_payload}) bounds accepted response
    payloads — METRICS bodies are the big ones. *)

val close : t -> unit
(** Idempotent. *)

val rpc : t -> Protocol.request -> (Protocol.response, string) result
(** One request/response round-trip; the typed helpers below are
    sugar over it. A server-sent [Error] frame is returned as [Ok
    (Error _)] here — the helpers turn it into [Result.Error]. *)

val ping : t -> (unit, string) result

val submit : t -> string array -> (Protocol.event list array, string) result
(** Match a batch; [result.(i)] are input [i]'s events as
    [(stable rule id, end position)], sorted by (end_pos, rule) —
    byte-identical to {!Mfsa_live.Live.run} on the server's current
    generation. *)

val metrics : t -> Protocol.metrics_format -> (string, string) result

val add_rule : t -> string -> (int * int, string) result
(** [(rule id, new generation)]. *)

val remove_rule : t -> int -> (int, string) result
(** The new generation. *)

val list_rules : t -> (int * (int * string) list, string) result
(** [(generation, rules)] with rules sorted by stable id. *)

val shutdown : t -> (unit, string) result
(** Ask the server to drain. The connection is useless afterwards
    (the server closes it once [Bye] is sent). *)

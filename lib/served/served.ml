module Serve = Mfsa_serve.Serve
module Live = Mfsa_live.Live
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig
module Pipeline = Mfsa_core.Pipeline
module Obs = Mfsa_obs.Obs
module Snapshot = Mfsa_obs.Snapshot
module P = Protocol

let log_src = Logs.Src.create "mfsa.served" ~doc:"Networked serving daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  engine : string;
  domains : int;
  host : string;
  port : int;
  queue_capacity : int option;
  admission : Serve.admission;
  retries : int;
  backoff : float;
  read_deadline : float;
  max_frame : int;
  batch_deadline : float option;
}

let default_config =
  {
    engine = "imfant";
    domains = 2;
    host = "127.0.0.1";
    port = 0;
    queue_capacity = None;
    admission = Serve.Block;
    retries = 0;
    backoff = 0.001;
    read_deadline = 30.;
    max_frame = P.default_max_payload;
    batch_deadline = None;
  }

(* One serving generation: the pool compiled from a Live snapshot plus
   the merged-FSA → stable-rule-id map needed to translate its events.
   Swapped wholesale under [t.m] on every accepted admin update. *)
type gen_serve = { serve : Serve.t; rule_ids : int array; generation : int }

type t = {
  cfg : config;
  live : Live.t;  (* all access under [admin_m] *)
  admin_m : Mutex.t;  (* serialises ruleset updates and Live reads *)
  m : Mutex.t;  (* guards [cur] *)
  mutable cur : gen_serve option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* Self-pipe waking the accept loop out of [select]: [stop] only
     flips the atomic and writes one byte, so it is safe from a signal
     handler and from any thread. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopped : bool Atomic.t;
  drained : bool Atomic.t;
  conn_m : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable handlers : Thread.t list;
  mutable next_conn : int;
  reg : Obs.t;
  connections_c : Obs.counter;
  active_g : Obs.gauge;
  proto_errors_c : Obs.counter;
}

(* ------------------------------------------------------- Metrics *)

let op_label = function
  | P.Ping -> "ping"
  | P.Submit _ -> "submit"
  | P.Metrics _ -> "metrics"
  | P.Admin _ -> "admin"
  | P.Shutdown -> "shutdown"

let requests_c t op =
  Obs.counter ~registry:t.reg ~help:"Requests handled, by opcode"
    ~labels:[ ("op", op) ] "mfsa_served_requests_total"

let request_h t op =
  Obs.histogram ~registry:t.reg
    ~help:"Request handling latency in seconds, by opcode"
    ~labels:[ ("op", op) ] "mfsa_served_request_seconds"

let current t =
  Mutex.lock t.m;
  let g = t.cur in
  Mutex.unlock t.m;
  g

let metrics t =
  let serve_snap =
    match current t with
    | None -> []
    | Some g ->
        Snapshot.with_labels
          [ ("generation", string_of_int g.generation) ]
          (Serve.snapshot g.serve)
  in
  let live_snap =
    Mutex.lock t.admin_m;
    let s = Live.metrics t.live in
    Mutex.unlock t.admin_m;
    s
  in
  Snapshot.merge
    [ Obs.snapshot Obs.default; Obs.snapshot t.reg; live_snap; serve_snap ]

(* -------------------------------------------------------- Create *)

let make_gen cfg live =
  let snap = Live.snapshot live in
  match Live.snapshot_mfsa snap with
  | None -> None
  | Some z ->
      Some
        {
          serve =
            Serve.create ~engine:cfg.engine ~domains:cfg.domains
              ?queue_capacity:cfg.queue_capacity ~admission:cfg.admission
              ~retries:cfg.retries ~backoff:cfg.backoff z;
          rule_ids = Live.snapshot_rule_ids snap;
          generation = Live.snapshot_generation snap;
        }

let validate cfg =
  if Option.is_none (Registry.find cfg.engine) then
    Some (Registry.unknown_message cfg.engine)
  else if cfg.domains < 1 then Some "domains must be >= 1"
  else if cfg.read_deadline < 0. then Some "read_deadline must be >= 0"
  else if cfg.max_frame < P.header_len then
    Some (Printf.sprintf "max_frame must be >= %d" P.header_len)
  else if cfg.retries < 0 then Some "retries must be >= 0"
  else if cfg.backoff < 0. then Some "backoff must be >= 0"
  else None

let create_live config live =
  match
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            try
              Unix.setsockopt fd Unix.SO_REUSEADDR true;
              Unix.bind fd
                (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
              Unix.listen fd 128;
              let bound_port =
                match Unix.getsockname fd with
                | Unix.ADDR_INET (_, p) -> p
                | Unix.ADDR_UNIX _ -> assert false
              in
              Ok (fd, bound_port)
            with e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Result.Error
                (Printf.sprintf "cannot bind %s:%d: %s" config.host config.port
                   (match e with
                   | Unix.Unix_error (err, _, _) -> Unix.error_message err
                   | e -> Printexc.to_string e))
          with
          | Result.Error msg -> Result.Error msg
          | Ok (listen_fd, bound_port) ->
              let wake_r, wake_w = Unix.pipe () in
              let reg = Obs.create () in
              ignore (Obs.process_start_time ~registry:reg () : Obs.gauge);
              let t =
                {
                  cfg = config;
                  live;
                  admin_m = Mutex.create ();
                  m = Mutex.create ();
                  cur = make_gen config live;
                  listen_fd;
                  bound_port;
                  wake_r;
                  wake_w;
                  stopped = Atomic.make false;
                  drained = Atomic.make false;
                  conn_m = Mutex.create ();
                  conns = Hashtbl.create 32;
                  handlers = [];
                  next_conn = 0;
                  reg;
                  connections_c =
                    Obs.counter ~registry:reg ~help:"Connections accepted"
                      "mfsa_served_connections_total";
                  active_g = Obs.process_connections_active ~registry:reg ();
                  proto_errors_c =
                    Obs.counter ~registry:reg
                      ~help:"Frames rejected before reaching a handler"
                      "mfsa_served_protocol_errors_total";
                }
              in
              Ok t

(* Both constructors funnel through Live + [create_live]: [create]
   compiles an initial ruleset, [create_source] accepts the unified
   source (rules, automata, or a persisted artifact the live layer
   adopts without recompiling). *)
let create ?(config = default_config) rules =
  match validate config with
  | Some msg -> Result.Error ("mfsa-served: " ^ msg)
  | None -> (
      match Live.of_rules ~engine:config.engine rules with
      | Result.Error e ->
          Result.Error
            (Printf.sprintf "cannot compile initial ruleset: %s"
               (Pipeline.error_to_string e))
      | Ok live -> create_live config live)

let create_source ?(config = default_config) source =
  match validate config with
  | Some msg -> Result.Error ("mfsa-served: " ^ msg)
  | None -> (
      match Live.of_source ~engine:config.engine source with
      | Result.Error e ->
          Result.Error
            (Printf.sprintf "cannot compile initial ruleset: %s"
               (Pipeline.error_to_string e))
      | Ok live -> create_live config live
      | exception Invalid_argument msg -> Result.Error msg)

let port t = t.bound_port

let generation t =
  Mutex.lock t.admin_m;
  let g = Live.generation t.live in
  Mutex.unlock t.admin_m;
  g

let n_rules t =
  Mutex.lock t.admin_m;
  let n = Live.n_rules t.live in
  Mutex.unlock t.admin_m;
  n

let connections_active t =
  Mutex.lock t.conn_m;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conn_m;
  n

(* ------------------------------------------------------ Requests *)

let sort_events =
  List.sort (fun (a : P.event) b ->
      if a.end_pos <> b.end_pos then Int.compare a.end_pos b.end_pos
      else Int.compare a.rule b.rule)

let remap rule_ids events =
  sort_events
    (List.map
       (fun { Engine_sig.fsa; end_pos } ->
         { P.rule = rule_ids.(fsa); end_pos })
       events)

let serve_error_to_err = function
  | Serve.Closed -> { P.code = P.Closed; message = Serve.error_to_string Serve.Closed }
  | Serve.Rejected _ as e -> { P.code = P.Rejected; message = Serve.error_to_string e }
  | Serve.Timeout _ as e -> { P.code = P.Timeout; message = Serve.error_to_string e }

(* A SUBMIT races generation swaps by design: grab the current pool,
   and if an admin update closed it before the batch was admitted,
   take the fresh pool and try again. Real work is never lost — a
   batch the old pool admitted is drained to completion by the swap —
   so the retry only ever re-runs batches that executed nothing. *)
let rec submit t inputs attempt =
  match current t with
  | None -> P.Results (Array.map (fun _ -> []) inputs)
  | Some g -> (
      match
        Serve.try_match_batch ?deadline:t.cfg.batch_deadline g.serve inputs
      with
      | Ok results -> P.Results (Array.map (remap g.rule_ids) results)
      | Result.Error Serve.Closed
        when attempt < 8 && not (Atomic.get t.stopped) ->
          (* The pool was swapped out from under us; the fresh one is
             (or will shortly be) in [t.cur]. *)
          Thread.yield ();
          submit t inputs (attempt + 1)
      | Result.Error e -> P.Error (serve_error_to_err e)
      | exception Serve.Job_error { slot; error } ->
          P.Error
            {
              code = P.Job_failed;
              message =
                Printf.sprintf "input %d failed: %s" slot
                  (Printexc.to_string error);
            })

(* Swap the serving pool to the live ruleset's current generation and
   drain the previous one. Runs under [admin_m] (one swap at a time);
   the drain returns only once every batch the old pool admitted has
   settled, which is exactly the no-drop guarantee ADMIN advertises. *)
let swap_generation t =
  let next = make_gen t.cfg t.live in
  Mutex.lock t.m;
  let old = t.cur in
  t.cur <- next;
  Mutex.unlock t.m;
  Option.iter (fun g -> Serve.shutdown g.serve) old

let admin t op =
  Mutex.lock t.admin_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admin_m)
    (fun () ->
      match op with
      | P.Add pattern -> (
          match Live.add_rule t.live pattern with
          | Result.Error e ->
              P.Error
                { code = P.Compile_failed; message = Pipeline.error_to_string e }
          | Ok rule ->
              swap_generation t;
              Log.info (fun m ->
                  m "gen %d: added rule %d %S" (Live.generation t.live) rule
                    pattern);
              P.Added { rule; generation = Live.generation t.live })
      | P.Remove id ->
          if Live.remove_rule t.live id then begin
            swap_generation t;
            Log.info (fun m ->
                m "gen %d: removed rule %d" (Live.generation t.live) id);
            P.Removed { generation = Live.generation t.live }
          end
          else
            P.Error
              {
                code = P.Unknown_rule;
                message = Printf.sprintf "no live rule %d" id;
              }
      | P.List_rules ->
          P.Rule_list
            { generation = Live.generation t.live; rules = Live.rules t.live })

let handle_request t = function
  | P.Ping -> P.Pong
  | P.Submit inputs ->
      if Atomic.get t.stopped then
        P.Error { code = P.Closed; message = "server is draining" }
      else submit t inputs 0
  | P.Metrics fmt ->
      let snap = metrics t in
      P.Metrics_data
        (match fmt with
        | P.Prometheus -> Snapshot.to_prometheus snap
        | P.Json -> Snapshot.to_json snap ^ "\n")
  | P.Admin op ->
      if Atomic.get t.stopped then
        P.Error { code = P.Closed; message = "server is draining" }
      else admin t op
  | P.Shutdown -> P.Bye

(* --------------------------------------------------- Connections *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stopped true) then
    (* One byte into the self-pipe; EPIPE/EBADF mean [serve] already
       drained and closed it, which is exactly the no-op we want. *)
    try ignore (Unix.write_substring t.wake_w "x" 0 1 : int)
    with Unix.Unix_error _ -> ()

let handle_signals t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let on_signal _ = stop t in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* Best-effort response write: a peer that vanished mid-reply takes
   only its connection with it. *)
let try_write fd resp =
  match P.write_frame fd (P.response_to_frame resp) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
    ->
      false

let handle_conn t id fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  if t.cfg.read_deadline > 0. then
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_deadline
     with Unix.Unix_error _ -> ());
  let continue = ref true in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.conn_m;
      Hashtbl.remove t.conns id;
      Mutex.unlock t.conn_m;
      Obs.gauge_add t.active_g (-1.);
      close_quietly fd)
    (fun () ->
      while !continue do
        match P.read_frame ~max_payload:t.cfg.max_frame fd with
        | P.Eof -> continue := false
        | P.Fail err ->
            Obs.inc t.proto_errors_c;
            (* Framing is broken (or the peer idled out): answer with
               the typed error if the socket still takes it, then
               close — resynchronising an unframed byte stream is not
               worth guessing at. *)
            ignore (try_write fd (P.Error err) : bool);
            continue := false
        | P.Frame frame -> (
            match P.request_of_frame frame with
            | Result.Error err ->
                Obs.inc t.proto_errors_c;
                ignore (try_write fd (P.Error err) : bool);
                continue := false
            | Ok req ->
                let op = op_label req in
                Obs.inc (requests_c t op);
                let resp =
                  Obs.time (request_h t op) (fun () -> handle_request t req)
                in
                if not (try_write fd resp) then continue := false;
                (match req with
                | P.Shutdown ->
                    continue := false;
                    stop t
                | _ -> ()))
      done)

(* ----------------------------------------------------- Accepting *)

let drain t =
  if not (Atomic.exchange t.drained true) then begin
    close_quietly t.listen_fd;
    (* Nudge every handler out of a blocking read: in-flight requests
       finish (the write side stays open for the response), the next
       read sees EOF. *)
    Mutex.lock t.conn_m;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      t.conns;
    let handlers = t.handlers in
    t.handlers <- [];
    Mutex.unlock t.conn_m;
    List.iter Thread.join handlers;
    (match current t with
    | Some g -> Serve.shutdown g.serve
    | None -> ());
    close_quietly t.wake_r;
    close_quietly t.wake_w
  end

let serve t =
  while not (Atomic.get t.stopped) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.wake_r readable then
          (* Woken for shutdown; the loop condition does the rest. *)
          ()
        else if List.mem t.listen_fd readable then (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                  | Unix.EWOULDBLOCK ),
                  _,
                  _ ) ->
              ()
          | exception Unix.Unix_error (e, _, _) ->
              (* Transient resource exhaustion (EMFILE & co): log,
                 back off a beat, keep serving. *)
              Log.warn (fun m -> m "accept: %s" (Unix.error_message e));
              Unix.sleepf 0.01
          | fd, _peer ->
              Obs.inc t.connections_c;
              Obs.gauge_add t.active_g 1.;
              Mutex.lock t.conn_m;
              let id = t.next_conn in
              t.next_conn <- id + 1;
              Hashtbl.replace t.conns id fd;
              let th = Thread.create (fun () -> handle_conn t id fd) () in
              t.handlers <- th :: t.handlers;
              Mutex.unlock t.conn_m)
  done;
  drain t

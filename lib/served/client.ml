module P = Protocol

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable closed : bool;
}

let connect ?(read_deadline = 30.) ?(max_frame = P.default_max_payload) ~host
    ~port () =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      if read_deadline > 0. then
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_deadline
         with Unix.Unix_error _ -> ());
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Result.Error e
  with
  | Ok fd -> Ok { fd; max_frame; closed = false }
  | Result.Error (Unix.Unix_error (e, _, _)) ->
      Result.Error
        (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
  | Result.Error e ->
      Result.Error
        (Printf.sprintf "connect %s:%d: %s" host port (Printexc.to_string e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rpc t req =
  if t.closed then Result.Error "connection closed"
  else
    match P.write_frame t.fd (P.request_to_frame req) with
    | exception Unix.Unix_error (e, _, _) ->
        Result.Error ("write: " ^ Unix.error_message e)
    | () -> (
        match P.read_frame ~max_payload:t.max_frame t.fd with
        | P.Eof -> Result.Error "server closed the connection"
        | P.Fail err -> Result.Error (P.err_to_string err)
        | P.Frame frame -> (
            match P.response_of_frame frame with
            | Result.Error err -> Result.Error (P.err_to_string err)
            | Ok resp -> Ok resp))

let unexpected what resp =
  Result.Error
    (Printf.sprintf "unexpected response to %s: %s" what
       (match resp with
       | P.Pong -> "pong"
       | P.Results _ -> "results"
       | P.Metrics_data _ -> "metrics_data"
       | P.Added _ -> "added"
       | P.Removed _ -> "removed"
       | P.Rule_list _ -> "rule_list"
       | P.Bye -> "bye"
       | P.Error e -> P.err_to_string e))

let lift what ok t req =
  match rpc t req with
  | Result.Error _ as e -> e
  | Ok (P.Error err) -> Result.Error (P.err_to_string err)
  | Ok resp -> ( match ok resp with Some v -> Ok v | None -> unexpected what resp)

let ping t = lift "ping" (function P.Pong -> Some () | _ -> None) t P.Ping

let submit t inputs =
  lift "submit"
    (function P.Results r -> Some r | _ -> None)
    t (P.Submit inputs)

let metrics t fmt =
  lift "metrics"
    (function P.Metrics_data s -> Some s | _ -> None)
    t (P.Metrics fmt)

let add_rule t pattern =
  lift "admin add"
    (function P.Added { rule; generation } -> Some (rule, generation) | _ -> None)
    t
    (P.Admin (P.Add pattern))

let remove_rule t id =
  lift "admin remove"
    (function P.Removed { generation } -> Some generation | _ -> None)
    t
    (P.Admin (P.Remove id))

let list_rules t =
  lift "admin rules"
    (function
      | P.Rule_list { generation; rules } -> Some (generation, rules)
      | _ -> None)
    t (P.Admin P.List_rules)

let shutdown t = lift "shutdown" (function P.Bye -> Some () | _ -> None) t P.Shutdown

(** The networked serving daemon: one merged automaton behind a TCP
    socket.

    Everything below the ROADMAP's "millions of users" north star
    already exists in-process — {!Mfsa_serve.Serve} shards batches
    across domains, {!Mfsa_live.Live} swaps rule generations with
    zero downtime, {!Mfsa_obs.Obs} counts it all — but had no remote
    surface. This module is that surface: a single-process TCP server
    speaking the length-prefixed {!Protocol}, with

    - [SUBMIT]: a batch of inputs → per-input match events against
      {e stable rule ids}, executed by a domain-parallel
      {!Mfsa_serve.Serve} pool and byte-identical to sequential
      execution of the current generation;
    - [ADMIN ADD/REMOVE/LIST]: the remote driver for
      {!Mfsa_live.Live}'s generation-swap machinery — an accepted
      update compiles the next generation, swaps it in atomically and
      drains the previous pool, so in-flight batches finish on the
      generation they started on and nothing is dropped;
    - [METRICS]: one Prometheus (or JSON) exposition merging the
      process-wide compile spans, the daemon's own request/connection
      series, the live-ruleset gauges and the current pool's full
      view, process gauges included;
    - [PING] and [SHUTDOWN] for liveness and remote drain.

    Robustness: per-connection read deadlines (an idle or stalled
    peer is disconnected), a maximum frame size (the length prefix
    never drives an unchecked allocation), typed protocol errors
    mapped from {!Mfsa_serve.Serve.error}, and graceful drain — on
    {!stop} (or SIGINT/SIGTERM via {!handle_signals}) the listener
    closes, in-flight requests complete, connections are closed and
    the pool drains before {!serve} returns. A dropped client mid-
    response surfaces as [EPIPE], not [SIGPIPE], and kills only that
    connection.

    Concurrency: the accept loop runs on the caller of {!serve}; each
    connection gets a (sys)thread; batches execute on the pool's
    worker domains. One server per {!t}; several servers can coexist
    in a process (each owns its registry and pool). *)

type config = {
  engine : string;  (** Registry engine name, [faulty{..}:] wrappers included. *)
  domains : int;  (** Worker domains per generation pool. *)
  host : string;  (** Bind address, default ["127.0.0.1"]. *)
  port : int;  (** TCP port; [0] binds an ephemeral one (see {!port}). *)
  queue_capacity : int option;  (** Pool submission-queue bound. *)
  admission : Mfsa_serve.Serve.admission;
  retries : int;  (** Per-job retry budget of the pool. *)
  backoff : float;  (** Base retry backoff, seconds. *)
  read_deadline : float;
      (** Per-connection read deadline in seconds; an idle connection
          is answered with a [Deadline] error and closed when it
          expires. [0.] disables it. *)
  max_frame : int;  (** Per-frame payload bound, bytes. *)
  batch_deadline : float option;
      (** Per-[SUBMIT] serving deadline handed to the pool; an
          expired one maps to a [Timeout] protocol error. *)
}

val default_config : config
(** imfant engine, 2 domains, loopback, ephemeral port, Block
    admission, 0 retries, 1 ms backoff, 30 s read deadline,
    {!Protocol.default_max_payload} frame bound, no batch deadline. *)

type t

val create : ?config:config -> string array -> (t, string) result
(** [create rules] compiles the initial ruleset (rule [i] gets stable
    id [i]), spins up the generation-0 pool and binds the listening
    socket — but accepts nothing until {!serve}. [Error] on an
    unknown engine, a malformed rule, invalid knobs, or a bind
    failure. *)

val create_source :
  ?config:config -> Mfsa_engine.Source.t -> (t, string) result
(** {!create} from a unified {!Mfsa_engine.Source}: a rules source is
    exactly [create]; a binary-artifact source is adopted through
    {!Mfsa_live.Live.of_source}, so the daemon's first generation
    comes up in O(artifact size) without recompiling — the fast
    cold-start path. [Error] additionally covers an engine without a
    table loader handed an artifact, and a source yielding more than
    one automaton; artifact/IO failures propagate as their typed
    exceptions. *)

val port : t -> int
(** The bound TCP port (the actual one when [config.port] was 0). *)

val generation : t -> int

val n_rules : t -> int

val connections_active : t -> int

val serve : t -> unit
(** Run the accept loop on the calling thread until {!stop} (or a
    remote [SHUTDOWN], or a handled signal), then drain: close the
    listener, let in-flight requests finish, join the connection
    handlers, shut the pool down. Returns when the drain is
    complete. *)

val stop : t -> unit
(** Request a graceful drain. Async-signal-safe in the OCaml sense
    (it only flips an atomic and writes to a wake-up pipe) — this is
    what {!handle_signals} installs. Idempotent. *)

val handle_signals : t -> unit
(** Install {!stop} as the [SIGINT]/[SIGTERM] handler and ignore
    [SIGPIPE]. Call once, from the binary; library users (tests)
    leave signals alone and call {!stop} directly. *)

val metrics : t -> Mfsa_obs.Snapshot.t
(** The merged metric view the [METRICS] opcode serves: process-wide
    registry, daemon series ([mfsa_served_*],
    [mfsa_process_start_time_seconds],
    [mfsa_process_connections_active]), live-ruleset gauges and the
    current generation's pool snapshot (tagged
    [generation=<g>]). *)

#!/bin/sh
# Continuous-integration entry point: full build, the whole test
# suite (unit, property and cram tests — the repo's tier-1 gate),
# then the live-update benchmark in smoke mode, i.e. at a small
# ruleset scale with few repetitions so the whole script stays in CI
# territory. Override MFSA_SCALE / MFSA_REPS to stress harder.
set -e
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== live-update bench (smoke) =="
MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_REPS="${MFSA_REPS:-2}" \
  dune exec bench/main.exe -- live-update

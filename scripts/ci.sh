#!/bin/sh
# Continuous-integration entry point: full build, the whole test
# suite (unit, property and cram tests — the repo's tier-1 gate),
# then the live-update benchmark in smoke mode, i.e. at a small
# ruleset scale with few repetitions so the whole script stays in CI
# territory. Override MFSA_SCALE / MFSA_REPS to stress harder.
set -e
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== live-update bench (smoke) =="
MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_REPS="${MFSA_REPS:-2}" \
  dune exec bench/main.exe -- live-update

echo "== engine-compare (smoke) =="
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- engine-compare)
printf '%s\n' "$out"
# Every registry engine must report exactly iMFAnt's matches on every
# dataset; rows that disagree are marked DIVERGED by the experiment.
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: an engine's match counts diverged from iMFAnt" >&2
  exit 1
fi

echo "== serve (smoke) =="
# A 2-domain Serve pool over the BRO ruleset must reproduce direct
# sequential execution byte-for-byte; the bench exits non-zero and
# prints DIVERGED on any mismatch.
out=$(dune exec bench/main.exe -- serve-check)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: sharded serving diverged from sequential execution" >&2
  exit 1
fi

echo "== bench JSON artefacts =="
MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- json
test -s BENCH_engines.json
test -s BENCH_serve.json

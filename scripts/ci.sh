#!/bin/sh
# Continuous-integration entry point: full build, the whole test
# suite (unit, property and cram tests — the repo's tier-1 gate),
# then the live-update benchmark in smoke mode, i.e. at a small
# ruleset scale with few repetitions so the whole script stays in CI
# territory. Override MFSA_SCALE / MFSA_REPS to stress harder.
set -e
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== live-update bench (smoke) =="
MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_REPS="${MFSA_REPS:-2}" \
  dune exec bench/main.exe -- live-update

echo "== engine-compare (smoke) =="
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- engine-compare)
printf '%s\n' "$out"
# Every registry engine must report exactly iMFAnt's matches on every
# dataset; rows that disagree are marked DIVERGED by the experiment.
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: an engine's match counts diverged from iMFAnt" >&2
  exit 1
fi

echo "== hotloop ablation (smoke) =="
# The hot-loop optimisation on/off matrix: every (config, engine,
# dataset) cell must report exactly the all-off baseline's per-FSA
# match counts — the experiment marks disagreeing cells DIVERGED —
# and the run must produce the JSON artefact.
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- hotloop)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: a hot-loop optimisation changed match counts" >&2
  exit 1
fi
test -s BENCH_hotloop.json

echo "== planner + eviction ablation (planner gate) =="
# The auto meta-engine must report exactly iMFAnt's matches on every
# dataset (rows disagreeing are marked DIVERGED and the bench exits
# non-zero), and the churn ablation must show the cache-collapse fix:
# on DS9 — the ruleset whose configuration working set overflows the
# default cache — the clock policy cycles single rows (evictions,
# never a whole-table flush) and stays at least as fast as the
# cache-less iMFAnt floor, where flush-on-full used to collapse.
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- planner)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: the auto planner diverged from a concrete engine" >&2
  exit 1
fi
ds9=$(printf '%s\n' "$out" | grep '^churn DS9:')
ds9_ev=$(printf '%s' "$ds9" | sed -n 's/.*(evictions \([0-9]*\),.*/\1/p')
ds9_fl=$(printf '%s' "$ds9" | sed -n 's/.*flushes \([0-9]*\)).*/\1/p')
ds9_vs=$(printf '%s' "$ds9" | sed -n 's/.* \([0-9.]*\)x over imfant.*/\1/p')
if [ -z "$ds9_ev" ] || [ "$ds9_ev" -lt 1 ] || [ "$ds9_fl" != 0 ]; then
  echo "ci: DS9 churn run did not evict incrementally" \
       "(evictions=$ds9_ev flushes=$ds9_fl)" >&2
  exit 1
fi
if ! awk "BEGIN { exit !($ds9_vs >= 1.0) }"; then
  echo "ci: DS9 hybrid with eviction fell below iMFAnt (${ds9_vs}x)" >&2
  exit 1
fi
test -s BENCH_planner.json
echo "planner gate OK (DS9: evictions $ds9_ev, flushes $ds9_fl, ${ds9_vs}x over imfant)"

echo "== sfa intra-input parallelism (sfa gate) =="
# The SFA wrapper chunks one input across domains and joins the chunk
# boundaries; both the real parallel path and the span-measured
# sequential replay must reproduce iMFAnt's events exactly (the bench
# marks any mismatch DIVERGED and exits non-zero). On the
# literal-heavy datasets the 2-domain critical-path (span) speedup
# must not regress below the sequential floor.
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- sfa)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: the sfa chunk/join path diverged from sequential execution" >&2
  exit 1
fi
test -s BENCH_sfa.json
for ds in BRO PEN RG1; do
  sp=$(sed -n 's/.*"dataset": "'"$ds"'".*"domains": 2,.*"span_speedup": \([0-9.]*\).*/\1/p' BENCH_sfa.json)
  if [ -z "$sp" ] || ! awk "BEGIN { exit !($sp >= 1.0) }"; then
    echo "ci: sfa 2-domain span speedup on $ds fell below 1.0 (${sp:-missing})" >&2
    exit 1
  fi
done
echo "sfa gate OK (zero divergence, 2-domain span speedup >= 1 on BRO/PEN/RG1)"

echo "== serve (smoke) =="
# A 2-domain Serve pool over the BRO ruleset must reproduce direct
# sequential execution byte-for-byte; the bench exits non-zero and
# prints DIVERGED on any mismatch.
out=$(dune exec bench/main.exe -- serve-check)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: sharded serving diverged from sequential execution" >&2
  exit 1
fi

echo "== serve fault injection (smoke) =="
# The same gate under a seeded deterministic fault schedule: the
# faulty{..}:imfant wrapper injects transient faults, delays and a
# replica-poisoning fault, and the service's retry + supervision
# budget must absorb all of it — byte-identical results (AGREE, zero
# divergences) with the recovery paths demonstrably exercised
# (non-zero retry and replica-restart counters in the summary line).
out=$(dune exec bench/main.exe -- serve-check \
  -e 'faulty{seed=7,fail_every=3,delay_every=5,delay_ms=1,poison_every=5}:imfant')
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: fault-injected serving diverged from the clean baseline" >&2
  exit 1
fi
retries=$(printf '%s' "$out" | sed -n 's/.*retries \([0-9]*\),.*/\1/p')
restarts=$(printf '%s' "$out" | sed -n 's/.*restarts \([0-9]*\),.*/\1/p')
if [ -z "$retries" ] || [ "$retries" -lt 1 ]; then
  echo "ci: fault injection never exercised a retry (retries=$retries)" >&2
  exit 1
fi
if [ -z "$restarts" ] || [ "$restarts" -lt 1 ]; then
  echo "ci: fault injection never respawned a replica (restarts=$restarts)" >&2
  exit 1
fi

echo "== bench JSON artefacts =="
MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  MFSA_REPS="${MFSA_REPS:-2}" dune exec bench/main.exe -- json
test -s BENCH_engines.json
test -s BENCH_serve.json
test -s BENCH_obs.json
# The observability artefact must be a JSON array of metric samples.
head -1 BENCH_obs.json | grep -qx '\[' || {
  echo "ci: BENCH_obs.json is not a metrics array" >&2; exit 1; }
grep -q '"name": "mfsa_serve_inputs_total"' BENCH_obs.json || {
  echo "ci: BENCH_obs.json is missing serve series" >&2; exit 1; }

echo "== metrics exposition (observability gate) =="
# The Prometheus scrape body must be well-formed: every sample line
# names a series whose base name carries a # TYPE declaration, no
# series (name + label set) appears twice, and histogram suffixes
# only hang off declared histograms. awk keeps this dependency-free.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
printf 'hello world\nhello there\nhe(l|n)p\n' > "$tmp/rules.txt"
printf 'say hello there or hello world and ask for henp or help' > "$tmp/stream.bin"
dune exec bin/mfsa_match.exe -- \
  --rules "$tmp/rules.txt" "$tmp/stream.bin" --metrics > "$tmp/metrics.prom"
test -s "$tmp/metrics.prom"
check_prom() {
awk '
  /^# TYPE / {
    if ($3 in type) { print "ci: duplicate TYPE for " $3; bad = 1 }
    type[$3] = $4; next
  }
  /^# HELP / { next }
  /^#/ { print "ci: unknown comment line: " $0; bad = 1; next }
  NF != 2 { print "ci: malformed sample line: " $0; bad = 1; next }
  {
    series = $1
    base = series; sub(/\{.*/, "", base)
    if (seen[series]++) { print "ci: duplicate series " series; bad = 1 }
    if (base in type) next
    hist = base
    if (sub(/_(bucket|sum|count)$/, "", hist) && type[hist] == "histogram")
      next
    print "ci: sample without TYPE declaration: " series; bad = 1
  }
  END {
    if (NR == 0) { print "ci: empty metrics exposition"; bad = 1 }
    exit bad
  }' "$1"
}
check_prom "$tmp/metrics.prom"
# Compile spans, Serve counters (the fault-tolerance ones included)
# and engine stats must all be present.
for series in mfsa_compile_stage_seconds_count mfsa_serve_batches_total \
              mfsa_serve_timeouts_total mfsa_serve_retries_total \
              mfsa_serve_rejected_total mfsa_serve_replica_restarts_total \
              mfsa_engine_runs_total mfsa_engine_class_count \
              mfsa_engine_prefilter_skipped_bytes_total; do
  grep -q "^$series" "$tmp/metrics.prom" || {
    echo "ci: metrics exposition is missing $series" >&2; exit 1; }
done
# A second scrape through the auto meta-engine (which plans the hybrid
# here — the demo ruleset is literal-covered): the planner gauges and
# the eviction/adaptive-capacity cache series must all expose, and the
# body must stay well-formed.
dune exec bin/mfsa_match.exe -- --engine auto \
  --rules "$tmp/rules.txt" "$tmp/stream.bin" --metrics > "$tmp/metrics_auto.prom"
test -s "$tmp/metrics_auto.prom"
check_prom "$tmp/metrics_auto.prom"
for series in mfsa_engine_planner_choice mfsa_engine_planner_literal_share \
              mfsa_engine_planner_activation_density \
              mfsa_engine_planner_prefilter \
              mfsa_engine_cache_evictions_total mfsa_engine_cache_capacity \
              mfsa_engine_cache_grows_total mfsa_engine_cache_shrinks_total \
              mfsa_engine_demotions_total; do
  grep -q "^$series" "$tmp/metrics_auto.prom" || {
    echo "ci: auto-engine exposition is missing $series" >&2; exit 1; }
done
# A third scrape through the sfa{..} wrapper (threshold 1 forces the
# chunked path even on the demo stream): the split/join series must
# all expose and the body must stay well-formed.
dune exec bin/mfsa_match.exe -- --engine 'sfa{domains=2,threshold=1}:imfant' \
  --rules "$tmp/rules.txt" "$tmp/stream.bin" --metrics > "$tmp/metrics_sfa.prom"
test -s "$tmp/metrics_sfa.prom"
check_prom "$tmp/metrics_sfa.prom"
for series in mfsa_sfa_runs_total mfsa_sfa_seq_runs_total \
              mfsa_sfa_chunks_total mfsa_sfa_fixup_bytes_total \
              mfsa_sfa_carry_dead_total mfsa_sfa_carry_live_total \
              mfsa_sfa_prefilter_skipped_bytes_total mfsa_sfa_domains \
              mfsa_sfa_threshold_bytes; do
  grep -q "^$series" "$tmp/metrics_sfa.prom" || {
    echo "ci: sfa exposition is missing $series" >&2; exit 1; }
done
# The JSON exporter must agree with the Prometheus one on sample count.
dune exec bin/mfsa_match.exe -- \
  --rules "$tmp/rules.txt" "$tmp/stream.bin" --metrics json > "$tmp/metrics.json"
prom_n=$(grep -cv '^#' "$tmp/metrics.prom" || true)
json_n=$(grep -c '"name"' "$tmp/metrics.json" || true)
json_hist_rows=$(grep '"name"' "$tmp/metrics.json" | grep -c '"buckets"' || true)
# Each Prometheus histogram series expands to bounds+1 bucket lines
# plus _sum and _count; recompute the flat-line count from the JSON.
json_flat=$((json_n - json_hist_rows))
hist_lines=$(grep -c '_bucket{' "$tmp/metrics.prom" || true)
expected=$((json_flat + hist_lines + 2 * json_hist_rows))
if [ "$prom_n" -ne "$expected" ]; then
  echo "ci: exporters disagree (prom $prom_n lines vs json-derived $expected)" >&2
  exit 1
fi
echo "metrics exposition OK ($prom_n sample lines, $json_n series)"

echo "== artifact persistence (persist gate) =="
# Compile → save → reload per dataset: every table-capable engine's
# match counts from the reloaded tables must equal the ones from the
# fresh compile (the experiment marks mismatches DIVERGED and exits
# non-zero), and reloading must never be slower than recompiling.
out=$(MFSA_SCALE="${MFSA_SCALE:-0.1}" MFSA_STREAM_KB="${MFSA_STREAM_KB:-32}" \
  dune exec bench/main.exe -- persist)
printf '%s\n' "$out"
if printf '%s' "$out" | grep -q DIVERGED; then
  echo "ci: a reloaded artifact's match counts diverged from the compile" >&2
  exit 1
fi
test -s BENCH_persist.json
awk -F'"load_speedup": ' '
  /"load_speedup"/ {
    split($2, a, ","); if (a[1] + 0 < 1.0) {
      print "ci: artifact load slower than compile (speedup " a[1] ")"; bad = 1
    }
    rows++
  }
  END { if (rows == 0) { print "ci: BENCH_persist.json has no rows"; bad = 1 }
        exit bad }' BENCH_persist.json
# Fresh-process reload: an artifact written by one process must give a
# separately started matcher byte-identical per-rule counts.
match=_build/default/bin/mfsa_match.exe
_build/default/bin/mfsa_compile.exe --emit "$tmp/ci.mfsa" "$tmp/rules.txt"
"$match" --rules "$tmp/rules.txt" "$tmp/stream.bin" | grep '^rule' > "$tmp/counts.compile"
"$match" --load "$tmp/ci.mfsa" "$tmp/stream.bin" | grep '^rule' > "$tmp/counts.reload"
if ! cmp -s "$tmp/counts.compile" "$tmp/counts.reload"; then
  echo "ci: fresh-process artifact reload changed per-rule counts" >&2
  diff "$tmp/counts.compile" "$tmp/counts.reload" >&2 || true
  exit 1
fi
echo "persist gate OK (reload = compile, load_speedup >= 1 on all rows)"

echo "== served soak (daemon + loadgen, fault-injected) =="
# The networked daemon under sustained open-loop load with a seeded
# fault schedule: for MFSA_SOAK_S seconds, four clients drive SUBMIT
# batches at a fixed arrival rate against a faulty{..}:imfant daemon
# whose retry + supervision budget must absorb every injected fault —
# zero result divergence from the clean sequential baseline, at least
# one retry and one replica restart actually observed (otherwise the
# schedule never bit), and a clean exit 0 on SIGTERM afterwards.
# Binaries are invoked from _build directly: dune already built them
# above, and a backgrounded `dune exec` would contend for the build
# lock with the loadgen invocation.
served=_build/default/bin/mfsa_served_cli.exe
bench=_build/default/bench/main.exe
faulty='faulty{seed=7,fail_every=97,poison_every=211}:imfant'
_build/default/bin/mfsa_dataset.exe BRO --scale 0.2 -r "$tmp/soak_rules.txt"
"$served" run --rules "$tmp/soak_rules.txt" -e "$faulty" \
  --retries 6 --backoff 0.0002 --domains 2 \
  --port 0 --port-file "$tmp/soak_port" -q 2> "$tmp/soak_daemon.err" &
soak_pid=$!
for _ in $(seq 1 100); do [ -s "$tmp/soak_port" ] && break; sleep 0.1; done
if ! [ -s "$tmp/soak_port" ]; then
  echo "ci: soak daemon never wrote its port file" >&2
  cat "$tmp/soak_daemon.err" >&2
  kill "$soak_pid" 2>/dev/null || true
  exit 1
fi
out=$("$bench" loadgen --rules "$tmp/soak_rules.txt" \
  --port-file "$tmp/soak_port" --rate "${MFSA_SOAK_RATE:-150}" \
  --duration "${MFSA_SOAK_S:-30}" --clients 4 --expect -e "$faulty") || {
  printf '%s\n' "$out"
  echo "ci: soak loadgen failed (divergence or transport errors)" >&2
  kill "$soak_pid" 2>/dev/null || true
  exit 1
}
printf '%s\n' "$out"
printf '%s' "$out" | grep -q '^divergences 0,' || {
  echo "ci: soak run diverged from the sequential baseline" >&2
  kill "$soak_pid" 2>/dev/null || true
  exit 1
}
soak_retries=$(printf '%s' "$out" | sed -n 's/^server: retries \([0-9]*\),.*/\1/p')
soak_restarts=$(printf '%s' "$out" | sed -n 's/^server: retries [0-9]*, restarts \([0-9]*\)$/\1/p')
if [ -z "$soak_retries" ] || [ "$soak_retries" -lt 1 ]; then
  echo "ci: soak fault injection never exercised a retry (retries=$soak_retries)" >&2
  kill "$soak_pid" 2>/dev/null || true
  exit 1
fi
if [ -z "$soak_restarts" ] || [ "$soak_restarts" -lt 1 ]; then
  echo "ci: soak fault injection never respawned a replica (restarts=$soak_restarts)" >&2
  kill "$soak_pid" 2>/dev/null || true
  exit 1
fi
test -s BENCH_served.json
kill -TERM "$soak_pid"
soak_status=0
wait "$soak_pid" || soak_status=$?
if [ "$soak_status" -ne 0 ]; then
  echo "ci: soak daemon did not drain cleanly on SIGTERM (exit $soak_status)" >&2
  cat "$tmp/soak_daemon.err" >&2
  exit 1
fi
echo "served soak OK (retries $soak_retries, restarts $soak_restarts, clean SIGTERM drain)"

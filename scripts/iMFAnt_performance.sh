#!/bin/sh
# Reproduces Figs. 9 and 10 plus Table II (execution performance) —
# the analogue of the paper artifact's iMFAnt_performance.sh.
# MFSA_SCALE=1 MFSA_STREAM_KB=1024 MFSA_REPS=15 approaches the paper's
# configuration (expect hours on one core).
set -e
cd "$(dirname "$0")/.."
exec dune exec bin/mfsa_report.exe -- table2 fig9 fig10 baselines "$@"

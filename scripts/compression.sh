#!/bin/sh
# Reproduces Fig. 7 (automata compression) — the analogue of the
# paper artifact's compression.sh. Scale with MFSA_SCALE=1 for the
# paper's ruleset sizes.
set -e
cd "$(dirname "$0")/.."
exec dune exec bin/mfsa_report.exe -- fig7 ablation-ccsplit "$@"

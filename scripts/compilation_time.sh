#!/bin/sh
# Reproduces Fig. 8 (compilation stage times) — the analogue of the
# paper artifact's compilation_time.sh. Use --reps 30 for the paper's
# repetition count.
set -e
cd "$(dirname "$0")/.."
exec dune exec bin/mfsa_report.exe -- fig8 complexity "$@"

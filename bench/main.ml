(* Benchmark harness.

   Two modes:

   - `dune exec bench/main.exe` (or with artefact names such as
     `fig7 table2`): regenerates the paper's evaluation artefacts —
     every table and figure of §VI — via Mfsa_core.Experiments and
     prints them in paper order.

   - `dune exec bench/main.exe -- bechamel`: runs one Bechamel
     micro-benchmark per table/figure family, measuring the kernel
     each artefact stresses (INDEL metric, FSA construction, merging,
     full compilation, iMFAnt execution, active-set instrumentation,
     scheduler projection).

   - `dune exec bench/main.exe -- json`: runs the engine comparison
     and the serving benchmark and writes BENCH_engines.json and
     BENCH_serve.json for machine consumption.

   - `dune exec bench/main.exe -- hotloop`: runs the hot-loop
     optimisation on/off matrix (byte-class compression, literal
     prefilter, 2-byte stride × iMFAnt/hybrid × every dataset),
     prints the ablation table and writes BENCH_hotloop.json. Every
     cell must agree with the all-off baseline's match counts.

   - `dune exec bench/main.exe -- serve-check`: CI smoke gate — a
     2-domain Serve pool over the BRO ruleset must agree
     byte-for-byte with direct sequential execution.

   All modes accept `-e/--engine NAME` (the same flag as mfsa-match
   and mfsa-live) to pick the registry engine under test; `-e help`
   lists the registered names. *)

module E = Mfsa_core.Experiments
module Pipeline = Mfsa_core.Pipeline
module Datasets = Mfsa_datasets.Datasets
module Stream_gen = Mfsa_datasets.Stream_gen
module Merge = Mfsa_model.Merge
module Imfant = Mfsa_engine.Imfant
module Infant = Mfsa_engine.Infant
module Hybrid = Mfsa_engine.Hybrid
module Schedule = Mfsa_engine.Schedule
module Indel = Mfsa_util.Indel
module Report = Mfsa_core.Report
module Live = Mfsa_live.Live
module Registry = Mfsa_engine.Registry
module Engine_sig = Mfsa_engine.Engine_sig
module Pool = Mfsa_engine.Pool
module Serve = Mfsa_serve.Serve
module Obs = Mfsa_obs.Obs
module Snapshot = Mfsa_obs.Snapshot
module Artifact = Mfsa_artifact.Artifact
module Tables = Mfsa_engine.Tables

(* ------------------------------------------------------- Bechamel *)

open Bechamel
open Toolkit

(* Shared fixtures, built once: a small BRO-like ruleset, its FSAs,
   its MFSA and a stream — enough to exercise every kernel without
   making the micro-benchmark suite run for minutes. *)
let fixture =
  lazy
    (let ds = Datasets.bro217 ~scale:0.15 () in
     let fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules) in
     let z = Merge.merge fsas in
     let imfant = Imfant.compile z in
     let hybrid = Hybrid.of_imfant imfant in
     let infants = Array.map Infant.compile fsas in
     let stream = Stream_gen.generate ~seed:3 ~size:16384 ds.Datasets.rules in
     (* Warm the hybrid's configuration cache so the kernel measures
        steady-state lookup throughput, not first-pass construction. *)
     ignore (Hybrid.count hybrid stream);
     (ds, fsas, z, imfant, hybrid, infants, stream))

let tests () =
  let ds, fsas, z, imfant, hybrid, infants, stream = Lazy.force fixture in
  [
    (* Fig. 1 measures morphological similarity: the INDEL kernel. *)
    Test.make ~name:"fig1-indel-similarity"
      (Staged.stage (fun () ->
           ignore
             (Indel.average_pairwise_similarity ~sample:64 ds.Datasets.rules)));
    (* Table I characterises rulesets: the per-rule middle-end. *)
    Test.make ~name:"table1-build-fsas"
      (Staged.stage (fun () ->
           ignore (Result.get_ok (Pipeline.build_fsas ds.Datasets.rules))));
    (* Fig. 7 is the merging algorithm itself. *)
    Test.make ~name:"fig7-merge-all"
      (Staged.stage (fun () -> ignore (Merge.merge fsas)));
    (* Fig. 8 is the full five-stage pipeline. *)
    Test.make ~name:"fig8-full-pipeline"
      (Staged.stage (fun () ->
           ignore (Pipeline.compile_exn ~m:0 ds.Datasets.rules)));
    (* Table II adds the active-set instrumentation to execution. *)
    Test.make ~name:"table2-imfant-with-stats"
      (Staged.stage (fun () -> ignore (Imfant.run_with_stats imfant stream)));
    (* Fig. 9 compares iMFAnt on the MFSA with iNFAnt on the FSAs. *)
    Test.make ~name:"fig9-imfant-mfsa"
      (Staged.stage (fun () -> ignore (Imfant.count imfant stream)));
    (* Same automaton and stream through the lazy-DFA cache. *)
    Test.make ~name:"fig9-hybrid"
      (Staged.stage (fun () -> ignore (Hybrid.count hybrid stream)));
    Test.make ~name:"fig9-infant-baseline"
      (Staged.stage (fun () ->
           Array.iter (fun eng -> ignore (Infant.count eng stream)) infants));
    (* Baseline engines contrasted in the baselines experiment. *)
    Test.make ~name:"baseline-dfa-per-rule"
      (Staged.stage
         (let engines =
            Array.map (fun a -> Mfsa_engine.Dfa_engine.compile a) fsas
          in
          fun () ->
            Array.iter
              (fun e -> ignore (Mfsa_engine.Dfa_engine.count e stream))
              engines));
    Test.make ~name:"baseline-decomposed"
      (Staged.stage
         (let t = Mfsa_engine.Decomposed.compile fsas in
          fun () -> ignore (Mfsa_engine.Decomposed.count t stream)));
    Test.make ~name:"anml-homogeneous-ste"
      (Staged.stage
         (let h = Mfsa_anml.Homogeneous.of_mfsa z in
          fun () -> ignore (Mfsa_anml.Homogeneous.count h stream)));
    (* Fig. 10 replays the greedy scheduler over measured times. *)
    Test.make ~name:"fig10-schedule-projection"
      (Staged.stage
         (let times = Array.init 300 (fun i -> float_of_int (1 + (i mod 17))) in
          fun () ->
            List.iter
              (fun t -> ignore (Schedule.project ~threads:t times))
              [ 1; 2; 4; 8; 16; 32; 64; 128 ]));
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  Printf.printf "Bechamel micro-benchmarks (one per table/figure family)\n";
  Printf.printf "%-28s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 46 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let pretty =
                if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              Printf.printf "%-28s %16s\n%!" name pretty
          | _ -> Printf.printf "%-28s %16s\n%!" name "n/a")
        results)
    (tests ())

(* ------------------------------------------------- Live updates *)

let time f =
  let t0 = Mfsa_util.Clock.now () in
  let r = f () in
  (Mfsa_util.Clock.now () -. t0, r)

(* Incremental ruleset updates vs full recompilation (M=all), per
   dataset: the cost of reaching a new serving generation by
   Live.add_rule on an already-loaded ruleset, against compiling the
   whole ruleset from scratch; plus the retirement and forced
   compaction costs of the removal path. *)
let live_update cfg =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Live updates: incremental add/remove vs full recompile (M=all)\n\n";
  let rows =
    List.map
      (fun ds ->
        let rules = ds.Datasets.rules in
        let n = Array.length rules in
        (* Full recompile: parse + build + merge + freeze all N rules,
           i.e. what a static deployment redoes on every feed update. *)
        let t_full =
          let reps = max 1 cfg.E.reps in
          let acc = ref 0. in
          for _ = 1 to reps do
            let t, lv = time (fun () -> Live.of_rules rules) in
            ignore (Result.get_ok lv);
            acc := !acc +. t
          done;
          !acc /. float_of_int reps
        in
        (* Incremental: load all but the last k rules, then time each
           remaining add individually — every timed add produces a
           complete new generation over all rules seen so far. *)
        let k = max 1 (min 10 (n / 2)) in
        let lv =
          Result.get_ok
            (Live.of_rules ~gc_threshold:1.0 (Array.sub rules 0 (n - k)))
        in
        let t_add =
          let acc = ref 0. in
          for i = n - k to n - 1 do
            let t, _ = time (fun () -> Live.add_rule_exn lv rules.(i)) in
            acc := !acc +. t
          done;
          !acc /. float_of_int k
        in
        (* Retirement of those k rules (threshold 1.0: no compaction
           inside the timed region), then one forced compaction. *)
        let t_remove =
          let acc = ref 0. in
          for id = n - k to n - 1 do
            let t, ok = time (fun () -> Live.remove_rule lv id) in
            assert ok;
            acc := !acc +. t
          done;
          !acc /. float_of_int k
        in
        let t_compact, () = time (fun () -> Live.compact lv) in
        let s = Live.stats lv in
        assert (s.Live.dead_transitions = 0 && s.Live.live_rules = n - k);
        [
          ds.Datasets.abbr;
          string_of_int n;
          Report.fmt_time t_full;
          Report.fmt_time t_add;
          Printf.sprintf "%.1fx" (t_full /. t_add);
          Report.fmt_time t_remove;
          Report.fmt_time t_compact;
        ])
      (Datasets.all ~scale:cfg.E.scale ())
  in
  Buffer.add_string buf
    (Report.table
       ~header:
         [
           "dataset"; "rules"; "full compile"; "incr add"; "speedup";
           "remove"; "compact";
         ]
       rows);
  Buffer.add_string buf
    "\nfull compile: Live.of_rules over the whole ruleset; incr add: one\n\
     Live.add_rule against the already-merged rest (average over the last\n\
     adds); remove: retirement without compaction; compact: one forced\n\
     compaction pass after the removals.\n";
  Buffer.contents buf

(* ------------------------------------------------------ Serving *)

type serve_row = {
  sr_dataset : string;
  sr_engine : string;
  sr_domains : int;
  sr_inputs : int;
  sr_bytes : int;
  sr_seq_mbps : float;
  sr_par_mbps : float;
  sr_queue_hwm : int;
  sr_queue_capacity : int;
  sr_utilisation : float array;
  sr_agree : bool;
  sr_obs : Snapshot.t;  (* parallel service's metric view, pre-shutdown *)
}

(* One batch of independent inputs per dataset, sharded across the
   worker domains. A single-domain service over the same engine is the
   sequential baseline, and both services must reproduce the results
   of running the engine directly, input by input — submission-order
   aggregation makes the comparison exact, not statistical. *)
let serve_measurements ~engine cfg =
  let n_domains = max 2 (Pool.available_parallelism ()) in
  List.map
    (fun ds ->
      let fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules) in
      let z = Merge.merge fsas in
      let n_inputs = 4 * n_domains in
      let seg = max 1024 (cfg.E.stream_kb * 1024 / n_inputs) in
      let inputs =
        Array.init n_inputs (fun i ->
            Stream_gen.generate ~seed:(41 + i) ~size:seg ds.Datasets.rules)
      in
      let reference =
        let eng = Registry.compile_automaton_exn engine z in
        Array.map (Engine_sig.run eng) inputs
      in
      let run_service domains =
        let srv = Serve.create ~engine ~domains z in
        let results = ref [||] in
        for _ = 1 to max 1 cfg.E.reps do
          results := Serve.match_batch srv inputs
        done;
        let st = Serve.stats srv in
        let snap = Serve.snapshot srv in
        Serve.shutdown srv;
        (!results, st, snap)
      in
      let seq_results, seq_stats, _ = run_service 1 in
      let par_results, par_stats, par_snap = run_service n_domains in
      {
        sr_dataset = ds.Datasets.abbr;
        sr_engine = engine;
        sr_domains = n_domains;
        sr_inputs = n_inputs;
        sr_bytes = Array.fold_left (fun a s -> a + String.length s) 0 inputs;
        sr_seq_mbps = Serve.throughput_mbps seq_stats;
        sr_par_mbps = Serve.throughput_mbps par_stats;
        sr_queue_hwm = par_stats.Serve.queue_hwm;
        sr_queue_capacity = par_stats.Serve.queue_capacity;
        sr_utilisation = Serve.utilisation par_stats;
        sr_agree = seq_results = reference && par_results = reference;
        sr_obs =
          Snapshot.with_labels [ ("dataset", ds.Datasets.abbr) ] par_snap;
      })
    (Datasets.all ~scale:cfg.E.scale ())

let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let serve_bench ~engine cfg =
  let rows = serve_measurements ~engine cfg in
  let n_domains = match rows with r :: _ -> r.sr_domains | [] -> 0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Domain-parallel serving: %s engine, 1 domain vs %d domains (M=all)\n\n"
       engine n_domains);
  Buffer.add_string buf
    (Report.table
       ~header:
         [
           "dataset"; "inputs"; "MB"; "1-dom MB/s"; "N-dom MB/s"; "speedup";
           "queue hwm"; "mean util"; "agree";
         ]
       (List.map
          (fun r ->
            [
              r.sr_dataset;
              string_of_int r.sr_inputs;
              Printf.sprintf "%.1f" (float_of_int r.sr_bytes /. 1e6);
              Printf.sprintf "%.1f" r.sr_seq_mbps;
              Printf.sprintf "%.1f" r.sr_par_mbps;
              Printf.sprintf "%.2fx"
                (if r.sr_seq_mbps > 0. then r.sr_par_mbps /. r.sr_seq_mbps
                 else 0.);
              Printf.sprintf "%d/%d" r.sr_queue_hwm r.sr_queue_capacity;
              Printf.sprintf "%.2f" (mean r.sr_utilisation);
              (if r.sr_agree then "ok" else "DIVERGED");
            ])
          rows));
  Buffer.add_string buf
    "\n1-dom / N-dom: the same Serve pool with one worker domain vs all\n\
     available; agree: both reproduce direct sequential execution of the\n\
     engine byte-for-byte.\n";
  Buffer.contents buf

(* CI smoke gate: a 2-domain service over the BRO ruleset must agree
   byte-for-byte with running the engine directly on every input —
   and the clean reference is always the *underlying* engine, so a
   faulty{..}:-wrapped engine plus the service's retry/supervision
   budget must be indistinguishable from an unwrapped sequential run.
   The fault counters are printed for scripts/ci.sh to assert the
   injection actually exercised the recovery paths. Exits 1 on
   divergence (the DIVERGED marker is also grepped by ci.sh). *)
let serve_check ~engine () =
  let ds = Datasets.bro217 ~scale:0.25 () in
  let fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules) in
  let z = Merge.merge fsas in
  let inputs =
    Array.init 8 (fun i ->
        Stream_gen.generate ~seed:(11 + i) ~size:8192 ds.Datasets.rules)
  in
  let baseline = Registry.underlying engine in
  let eng = Registry.compile_automaton_exn baseline z in
  let reference = Array.map (Engine_sig.run eng) inputs in
  let srv = Serve.create ~engine ~domains:2 ~retries:4 ~backoff:0.0002 z in
  let got = Serve.match_batch srv inputs in
  let st = Serve.stats srv in
  Serve.shutdown srv;
  let ok = got = reference in
  Printf.printf
    "serve-check %s (BRO, 2 domains, %d inputs, queue hwm %d, retries %d, \
     restarts %d, timeouts %d, rejected %d): %s\n"
    engine (Array.length inputs) st.Serve.queue_hwm st.Serve.retries
    st.Serve.restarts st.Serve.timeouts st.Serve.rejected
    (if ok then "AGREE" else "DIVERGED");
  if not ok then exit 1

(* ------------------------------------------------------- Loadgen *)

module Client = Mfsa_served.Client
module Protocol = Mfsa_served.Protocol

(* Open-loop load generation against a live mfsa-served daemon.

   Request [k] of [rate * duration] is *scheduled* at [t0 + k/rate]
   regardless of how long earlier requests took, and its latency is
   measured from that scheduled instant to the response — the
   coordinated-omission-safe convention: a stalled server keeps
   accumulating scheduled-but-late requests instead of silently
   slowing the arrival process down. Requests are round-robined over
   [clients] persistent connections, one thread each.

   With --expect, every response is compared to local sequential
   execution (Live over the *underlying* engine, so a faulty{..}:
   daemon with a retry budget is held to the clean baseline); any
   difference counts as a divergence. The summary and
   BENCH_served.json carry throughput, log2-histogram latency
   quantiles, divergences, and the server-side retry/restart counters
   scraped from METRICS — which is how the CI soak gate checks the
   fault-injection path actually recovered. *)

type loadgen_cfg = {
  lg_host : string;
  lg_port : int option;
  lg_port_file : string option;
  lg_rules : string option;
  lg_rate : float;
  lg_duration : float;
  lg_clients : int;
  lg_batch : int;
  lg_bytes : int;
  lg_seed : int;
  lg_expect : bool;
  lg_out : string;
}

let loadgen_default =
  {
    lg_host = "127.0.0.1";
    lg_port = None;
    lg_port_file = None;
    lg_rules = None;
    lg_rate = 200.;
    lg_duration = 30.;
    lg_clients = 4;
    lg_batch = 1;
    lg_bytes = 2048;
    lg_seed = 42;
    lg_expect = false;
    lg_out = "BENCH_served.json";
  }

let loadgen_usage =
  "bench loadgen --rules FILE [--host ADDR] (--port N | --port-file FILE)\n\
  \  [--rate REQ_PER_S] [--duration S] [--clients N] [--batch INPUTS]\n\
  \  [--bytes PER_INPUT] [--seed N] [--expect] [--out FILE] [-e ENGINE]\n"

let parse_loadgen rest =
  let die fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "bench loadgen: %s\n%s" m loadgen_usage;
        exit 2)
      fmt
  in
  let int_arg k v = match int_of_string_opt v with
    | Some i -> i
    | None -> die "%s wants an integer, got %S" k v
  in
  let float_arg k v = match float_of_string_opt v with
    | Some f -> f
    | None -> die "%s wants a number, got %S" k v
  in
  let rec go c = function
    | [] -> c
    | "--host" :: v :: r -> go { c with lg_host = v } r
    | "--port" :: v :: r -> go { c with lg_port = Some (int_arg "--port" v) } r
    | "--port-file" :: v :: r -> go { c with lg_port_file = Some v } r
    | "--rules" :: v :: r -> go { c with lg_rules = Some v } r
    | "--rate" :: v :: r -> go { c with lg_rate = float_arg "--rate" v } r
    | "--duration" :: v :: r ->
        go { c with lg_duration = float_arg "--duration" v } r
    | "--clients" :: v :: r ->
        go { c with lg_clients = int_arg "--clients" v } r
    | "--batch" :: v :: r -> go { c with lg_batch = int_arg "--batch" v } r
    | "--bytes" :: v :: r -> go { c with lg_bytes = int_arg "--bytes" v } r
    | "--seed" :: v :: r -> go { c with lg_seed = int_arg "--seed" v } r
    | "--expect" :: r -> go { c with lg_expect = true } r
    | "--out" :: v :: r -> go { c with lg_out = v } r
    | a :: _ -> die "unknown flag %S" a
  in
  let c = go loadgen_default rest in
  if c.lg_rate <= 0. then die "--rate must be > 0";
  if c.lg_duration <= 0. then die "--duration must be > 0";
  if c.lg_clients < 1 then die "--clients must be >= 1";
  if c.lg_batch < 1 then die "--batch must be >= 1";
  if c.lg_bytes < 1 then die "--bytes must be >= 1";
  c

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l ->
            let l = String.trim l in
            go (if l = "" || l.[0] = '#' then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Sum every sample of a Prometheus counter family from exposition
   text — labelled series (one per generation here) included. *)
let prom_sum body name =
  List.fold_left
    (fun acc line ->
      let n = String.length name in
      if
        String.length line > n
        && String.sub line 0 n = name
        && (line.[n] = '{' || line.[n] = ' ')
      then
        match String.rindex_opt line ' ' with
        | Some i -> (
            match
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            with
            | Some v -> acc +. v
            | None -> acc)
        | None -> acc
      else acc)
    0.
    (String.split_on_char '\n' body)

let pct_ms h q = Snapshot.quantile h q *. 1e3

let write_served_json cfg ~engine ~requests ~elapsed ~bytes ~h ~divergences
    ~errors ~retries ~restarts =
  let oc = open_out cfg.lg_out in
  Printf.fprintf oc
    "[\n\
    \  {\"engine\": %S, \"rate\": %.3f, \"duration_s\": %.3f, \
     \"clients\": %d, \"batch\": %d, \"requests\": %d, \
     \"achieved_rps\": %.3f, \"bytes\": %d, \"mb_per_s\": %.3f, \
     \"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": %.6f, \"mean_s\": %.6f, \
     \"divergences\": %d, \"errors\": %d, \"server_retries\": %d, \
     \"server_restarts\": %d}\n\
     ]\n"
    engine cfg.lg_rate cfg.lg_duration cfg.lg_clients cfg.lg_batch requests
    (if elapsed > 0. then float_of_int requests /. elapsed else 0.)
    bytes
    (if elapsed > 0. then float_of_int bytes /. 1e6 /. elapsed else 0.)
    (Snapshot.quantile h 0.50) (Snapshot.quantile h 0.95)
    (Snapshot.quantile h 0.99)
    (if h.Snapshot.count > 0 then h.Snapshot.sum /. float_of_int h.Snapshot.count
     else 0.)
    divergences errors retries restarts;
  close_out oc;
  Printf.printf "wrote %s\n" cfg.lg_out

let loadgen ~engine rest =
  let cfg = parse_loadgen rest in
  let port =
    match (cfg.lg_port, cfg.lg_port_file) with
    | Some p, _ -> p
    | None, Some f -> (
        match read_lines f with
        | l :: _ when int_of_string_opt l <> None -> int_of_string l
        | _ ->
            Printf.eprintf "bench loadgen: %s does not contain a port number\n"
              f;
            exit 2)
    | None, None ->
        Printf.eprintf "bench loadgen: pass --port or --port-file\n%s"
          loadgen_usage;
        exit 2
  in
  let rules =
    match cfg.lg_rules with
    | Some f -> Array.of_list (read_lines f)
    | None ->
        Printf.eprintf "bench loadgen: pass --rules FILE\n%s" loadgen_usage;
        exit 2
  in
  (* A fixed pool of generated inputs: request k's batch is a
     deterministic slice, so the expected results are computed once. *)
  let pool_size = 64 in
  let pool =
    Array.init pool_size (fun i ->
        Stream_gen.generate ~seed:(cfg.lg_seed + i) ~size:cfg.lg_bytes rules)
  in
  let expected =
    if not cfg.lg_expect then [||]
    else
      let lv =
        match Live.of_rules ~engine:(Registry.underlying engine) rules with
        | Ok lv -> lv
        | Error e ->
            Printf.eprintf "bench loadgen: cannot compile baseline: %s\n"
              (Pipeline.error_to_string e);
            exit 2
      in
      Array.map
        (fun input ->
          List.map
            (fun e -> { Protocol.rule = e.Live.rule; end_pos = e.Live.end_pos })
            (Live.run lv input))
        pool
  in
  let n_requests = max 1 (int_of_float (cfg.lg_rate *. cfg.lg_duration)) in
  let reg = Obs.create () in
  let lat =
    Obs.histogram ~registry:reg ~help:"Scheduled-to-response request latency"
      "loadgen_latency_seconds"
  in
  let divergences = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let batch_of k =
    Array.init cfg.lg_batch (fun j ->
        pool.(((k * cfg.lg_batch) + j) mod pool_size))
  in
  let expected_of k =
    Array.init cfg.lg_batch (fun j ->
        expected.(((k * cfg.lg_batch) + j) mod pool_size))
  in
  let t0 = Mfsa_util.Clock.now () +. 0.05 (* let every client connect *) in
  let client i () =
    match Client.connect ~host:cfg.lg_host ~port () with
    | Error msg ->
        Printf.eprintf "bench loadgen: client %d: %s\n" i msg;
        Atomic.incr errors
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let k = ref i in
            while !k < n_requests do
              let scheduled = t0 +. (float_of_int !k /. cfg.lg_rate) in
              let now = Mfsa_util.Clock.now () in
              if scheduled > now then Unix.sleepf (scheduled -. now);
              (match Client.submit c (batch_of !k) with
              | Ok results ->
                  Obs.observe lat (Mfsa_util.Clock.now () -. scheduled);
                  Atomic.incr completed;
                  if cfg.lg_expect && results <> expected_of !k then
                    Atomic.incr divergences
              | Error msg ->
                  Atomic.incr errors;
                  Printf.eprintf "bench loadgen: request %d: %s\n" !k msg);
              k := !k + cfg.lg_clients
            done)
  in
  let threads =
    List.init cfg.lg_clients (fun i -> Thread.create (client i) ())
  in
  List.iter Thread.join threads;
  let elapsed = Mfsa_util.Clock.now () -. t0 in
  let retries, restarts =
    match Client.connect ~host:cfg.lg_host ~port () with
    | Error _ -> (-1, -1)
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.metrics c Protocol.Prometheus with
            | Error _ -> (-1, -1)
            | Ok body ->
                ( int_of_float (prom_sum body "mfsa_serve_retries_total"),
                  int_of_float (prom_sum body "mfsa_serve_replica_restarts_total")
                ))
  in
  let h =
    match Snapshot.find (Obs.snapshot reg) "loadgen_latency_seconds" with
    | Some { Snapshot.value = Snapshot.Histogram h; _ } -> h
    | _ -> { Snapshot.bounds = [||]; counts = [| 0 |]; sum = 0.; count = 0 }
  in
  let requests = Atomic.get completed in
  let bytes = requests * cfg.lg_batch * cfg.lg_bytes in
  Printf.printf
    "loadgen: %d/%d requests in %.2f s (%.1f req/s achieved, target %.1f, \
     %d clients, batch %d)\n"
    requests n_requests elapsed
    (if elapsed > 0. then float_of_int requests /. elapsed else 0.)
    cfg.lg_rate cfg.lg_clients cfg.lg_batch;
  Printf.printf
    "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, mean %.2f ms (log2 \
     buckets, upper bounds)\n"
    (pct_ms h 0.50) (pct_ms h 0.95) (pct_ms h 0.99)
    (if h.Snapshot.count > 0 then
       h.Snapshot.sum /. float_of_int h.Snapshot.count *. 1e3
     else 0.);
  Printf.printf "bytes: %.2f MB sent, %.2f MB/s\n"
    (float_of_int bytes /. 1e6)
    (if elapsed > 0. then float_of_int bytes /. 1e6 /. elapsed else 0.);
  Printf.printf "divergences %d, errors %d\n" (Atomic.get divergences)
    (Atomic.get errors);
  Printf.printf "server: retries %d, restarts %d\n" retries restarts;
  write_served_json cfg ~engine ~requests ~elapsed ~bytes ~h
    ~divergences:(Atomic.get divergences) ~errors:(Atomic.get errors) ~retries
    ~restarts;
  if Atomic.get divergences > 0 then exit 1

(* -------------------------------------------------- JSON export *)

let write_hotloop_json rows =
  let path = "BENCH_hotloop.json" in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"dataset\": %S, \"engine\": %S, \"config\": %S, \
         \"time_s\": %.6f, \"mb_per_s\": %.3f, \"class_count\": %d, \
         \"skip_rate\": %.6f, \"matches\": %d, \"agree\": %b}%s\n"
        r.E.hr_dataset r.E.hr_engine r.E.hr_config r.E.hr_time r.E.hr_mbps
        r.E.hr_class_count r.E.hr_skip_rate r.E.hr_matches r.E.hr_agree
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

let write_engines_json rows =
  let path = "BENCH_engines.json" in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"dataset\": %S, \"engine\": %S, \"time_s\": %.6f, \
         \"mb_per_s\": %.3f, \"cache_hit_rate\": %s, \"matches\": %d, \
         \"agree\": %b}%s\n"
        r.E.er_dataset r.E.er_engine r.E.er_time r.E.er_mbps
        (match r.E.er_hit_rate with
        | None -> "null"
        | Some hr -> Printf.sprintf "%.6f" hr)
        r.E.er_matches r.E.er_agree
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

(* BENCH_planner.json: one object with the planner comparison and the
   eviction-policy churn ablation side by side — the machine-readable
   form of `bench planner`, committed at the repo root and checked by
   the CI planner gate. *)
let write_planner_json feats prows crows =
  let module Planner = Mfsa_engine.Planner in
  let path = "BENCH_planner.json" in
  let oc = open_out path in
  let opt = function None -> "null" | Some s -> Printf.sprintf "%S" s in
  output_string oc "{\n  \"features\": [\n";
  let flast = List.length feats - 1 in
  List.iteri
    (fun i (abbr, f, choice) ->
      Printf.fprintf oc
        "    {\"dataset\": %S, \"states\": %d, \"fsas\": %d, \
         \"transitions\": %d, \"classes\": %d, \"density\": %.6f, \
         \"literal_share\": %.6f, \"prefilter\": %b, \"plan\": %S}%s\n"
        abbr f.Planner.f_states f.Planner.f_fsas f.Planner.f_transitions
        f.Planner.f_classes f.Planner.f_density f.Planner.f_literal_share
        f.Planner.f_prefilter choice
        (if i = flast then "" else ","))
    feats;
  output_string oc "  ],\n  \"planner\": [\n";
  let plast = List.length prows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"dataset\": %S, \"engine\": %S, \"planned\": %s, \
         \"active\": %s, \"time_s\": %.6f, \"mb_per_s\": %.3f, \
         \"vs_best\": %.4f, \"matches\": %d, \"agree\": %b}%s\n"
        r.E.pl_dataset r.E.pl_engine (opt r.E.pl_planned) (opt r.E.pl_active)
        r.E.pl_time r.E.pl_mbps r.E.pl_vs_best r.E.pl_matches r.E.pl_agree
        (if i = plast then "" else ","))
    prows;
  output_string oc "  ],\n  \"churn\": [\n";
  let clast = List.length crows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"dataset\": %S, \"policy\": %S, \"cache_rows\": %d, \
         \"time_s\": %.6f, \"mb_per_s\": %.3f, \"hit_rate\": %.6f, \
         \"flushes\": %d, \"evictions\": %d, \"grows\": %d, \
         \"capacity\": %d, \"resident\": %d, \"matches\": %d, \
         \"agree\": %b}%s\n"
        r.E.cr_dataset r.E.cr_policy r.E.cr_cache_rows r.E.cr_time
        r.E.cr_mbps r.E.cr_hit_rate r.E.cr_flushes r.E.cr_evictions
        r.E.cr_grows r.E.cr_capacity r.E.cr_resident r.E.cr_matches
        r.E.cr_agree
        (if i = clast then "" else ","))
    crows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d planner rows, %d churn rows)\n" path
    (List.length prows) (List.length crows)

(* `bench planner`: the adaptive-planner gate. Prints the auto-vs-
   concrete comparison and the clock-vs-flush churn ablation, writes
   BENCH_planner.json, and exits 1 if any row's match counts diverge
   from the iMFAnt reference. *)
let planner_bench cfg =
  let feats = E.planner_features cfg in
  let prows = E.planner_rows cfg in
  let crows = E.churn_rows cfg in
  print_string (E.planner_report cfg feats prows crows);
  print_newline ();
  write_planner_json feats prows crows;
  if
    List.exists (fun r -> not r.E.pl_agree) prows
    || List.exists (fun r -> not r.E.cr_agree) crows
  then exit 1

let json_float_array a =
  "["
  ^ String.concat ", "
      (Array.to_list (Array.map (Printf.sprintf "%.4f") a))
  ^ "]"

let write_serve_json rows =
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"dataset\": %S, \"engine\": %S, \"domains\": %d, \
         \"inputs\": %d, \"bytes\": %d, \"seq_mb_per_s\": %.3f, \
         \"par_mb_per_s\": %.3f, \"speedup\": %.3f, \"queue_hwm\": %d, \
         \"queue_capacity\": %d, \"utilisation\": %s, \"agree\": %b}%s\n"
        r.sr_dataset r.sr_engine r.sr_domains r.sr_inputs r.sr_bytes
        r.sr_seq_mbps r.sr_par_mbps
        (if r.sr_seq_mbps > 0. then r.sr_par_mbps /. r.sr_seq_mbps else 0.)
        r.sr_queue_hwm r.sr_queue_capacity
        (json_float_array r.sr_utilisation)
        r.sr_agree
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

(* Everything the json run observed, as one metric snapshot: the
   process-wide registry (compile-stage spans and counters from every
   compile the run performed), each engine row's warm counters
   (dataset- and engine-labelled) and each parallel service's full
   view (per-domain histograms included). *)
let write_obs_json engine_rows serve_rows =
  let merged =
    Snapshot.merge
      (Obs.snapshot Obs.default
      :: (List.map (fun r -> r.E.er_stats) engine_rows
         @ List.map (fun r -> r.sr_obs) serve_rows))
  in
  let path = "BENCH_obs.json" in
  let oc = open_out path in
  output_string oc (Snapshot.to_json merged);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s (%d samples)\n" path (List.length merged)

(* ------------------------------------------- artifact persistence *)

type persist_row = {
  pr_dataset : string;
  pr_rules : int;
  pr_bytes : int;
  pr_compile_s : float;
  pr_save_s : float;
  pr_load_s : float;
  pr_agree : (string * bool) list;
}

let persist_speedup r = if r.pr_load_s > 0. then r.pr_compile_s /. r.pr_load_s else 0.

let write_persist_json rows =
  let path = "BENCH_persist.json" in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"dataset\": %S, \"rules\": %d, \"artifact_bytes\": %d, \
         \"compile_ms\": %.3f, \"save_ms\": %.3f, \"load_ms\": %.3f, \
         \"load_speedup\": %.3f, \"agreement\": {%s}, \"diverged\": %b}%s\n"
        r.pr_dataset r.pr_rules r.pr_bytes (r.pr_compile_s *. 1e3)
        (r.pr_save_s *. 1e3) (r.pr_load_s *. 1e3) (persist_speedup r)
        (String.concat ", "
           (List.map (fun (e, a) -> Printf.sprintf "%S: %b" e a) r.pr_agree))
        (List.exists (fun (_, a) -> not a) r.pr_agree)
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

(* `bench persist`: the compiled-artifact persistence gate. Per
   dataset: compile the ruleset to engine-ready tables (pipeline run
   plus the derived execution tables Artifact.export persists), save
   the artifact, reload it, and time both roads to engine-ready — the
   load side is O(artifact size) and must beat recompilation. Every
   table-capable engine then replays the same stream from the compiled
   and the reloaded tables; a count mismatch marks the row DIVERGED
   and fails the run. Writes BENCH_persist.json. *)
let persist_bench cfg =
  let stream_size = cfg.E.stream_kb * 1024 in
  let rows =
    List.map
      (fun ds ->
        (* Best of three on both roads to engine-ready tables — same
           sampling for compile and load, so the reported ratio is not
           an artefact of asymmetric noise. *)
        let best_of_3 f =
          let samples = [ time f; time f; time f ] in
          List.fold_left
            (fun (bt, bv) (t, v) -> if t < bt then (t, v) else (bt, bv))
            (List.hd samples) (List.tl samples)
        in
        let t_compile, (c, tables) =
          best_of_3 (fun () ->
              let c = Pipeline.compile_exn ds.Datasets.rules in
              (c, Artifact.export c.Pipeline.mfsas))
        in
        let path =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "mfsa_persist_%s_%d.mfsa" ds.Datasets.abbr
               (Unix.getpid ()))
        in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let t_save, () = time (fun () -> Artifact.save path tables) in
            let bytes = (Unix.stat path).Unix.st_size in
            let t_load, loaded = best_of_3 (fun () -> Artifact.load path) in
            let stream =
              Stream_gen.generate ~seed:97 ~payload:ds.Datasets.payload
                ~size:stream_size ds.Datasets.rules
            in
            let counts compile parts =
              List.map (fun p -> Engine_sig.count (compile p) stream) parts
            in
            let agree =
              List.map
                (fun name ->
                  ( name,
                    counts (Registry.compile_automaton_exn name) c.Pipeline.mfsas
                    = counts (Registry.compile_tables_exn name) loaded ))
                (Registry.table_capable_names ())
            in
            let r =
              {
                pr_dataset = ds.Datasets.abbr;
                pr_rules = Array.length ds.Datasets.rules;
                pr_bytes = bytes;
                pr_compile_s = t_compile;
                pr_save_s = t_save;
                pr_load_s = t_load;
                pr_agree = agree;
              }
            in
            Printf.printf
              "persist %s: %d rules, %d B artifact; compile %.2f ms, save \
               %.2f ms, load %.2f ms (%.1fx); %s\n%!"
              r.pr_dataset r.pr_rules r.pr_bytes (t_compile *. 1e3)
              (t_save *. 1e3) (t_load *. 1e3) (persist_speedup r)
              (String.concat ", "
                 (List.map
                    (fun (e, a) -> e ^ if a then " AGREE" else " DIVERGED")
                    agree));
            r))
      (Datasets.all ~scale:cfg.E.scale ())
  in
  write_persist_json rows;
  if List.exists (fun r -> List.exists (fun (_, a) -> not a) r.pr_agree) rows
  then exit 1

(* ------------------------------------------------- SFA scaling *)

type sfa_row = {
  sf_dataset : string;
  sf_inner : string;
  sf_bytes : int;
  sf_domains : int;
  sf_seq_mbps : float;
  sf_span_mbps : float;
  sf_wall_mbps : float;
  sf_span_speedup : float;
  sf_wall_speedup : float;
  sf_agree : bool;
}

let write_sfa_json rows =
  let path = "BENCH_sfa.json" in
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"dataset\": %S, \"engine\": \"sfa{domains=%d,threshold=1}:%s\", \
         \"inner\": %S, \"bytes\": %d, \"domains\": %d, \
         \"seq_mb_per_s\": %.3f, \"span_mb_per_s\": %.3f, \
         \"wall_mb_per_s\": %.3f, \"span_speedup\": %.3f, \
         \"wall_speedup\": %.3f, \"agree\": %b}%s\n"
        r.sf_dataset r.sf_domains r.sf_inner r.sf_inner r.sf_bytes
        r.sf_domains r.sf_seq_mbps r.sf_span_mbps r.sf_wall_mbps
        r.sf_span_speedup r.sf_wall_speedup r.sf_agree
        (if i = last then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

(* `bench sfa`: the intra-input parallelism gate. One multi-MB stream
   per dataset; the iMFAnt whole-string run is the reference. For 1–4
   chunk domains, two measurements of the same split:

   - span: the chunk passes run sequentially, each timed, plus the
     join ([Sfa.run_span]); span time = max chunk time + join time —
     the critical path a box with that many free cores would see,
     independent of how many cores this box has.
   - wall: the real [Sfa.run], chunk passes on spawned domains —
     honest wall clock, but meaningless as a scaling signal on a
     single-core container.

   Both paths' event lists must equal the sequential reference exactly
   (DIVERGED and exit 1 otherwise). Writes BENCH_sfa.json. *)
let sfa_bench cfg =
  let inner = "imfant" in
  let reps = max 1 cfg.E.reps in
  let best f =
    let r = ref (f ()) in
    for _ = 2 to reps do
      let s = f () in
      if fst s < fst !r then r := s
    done;
    !r
  in
  let size = max (256 * 1024) (cfg.E.stream_kb * 1024) in
  let mbps seconds =
    if seconds > 0. then float_of_int size /. 1e6 /. seconds else 0.
  in
  let rows =
    List.concat_map
      (fun ds ->
        let fsas = Result.get_ok (Pipeline.build_fsas ds.Datasets.rules) in
        let z = Merge.merge fsas in
        let stream =
          Stream_gen.generate ~seed:83 ~payload:ds.Datasets.payload ~size
            ds.Datasets.rules
        in
        let im = Imfant.compile z in
        let reference =
          List.sort compare
            (List.map
               (fun e -> (e.Imfant.fsa, e.Imfant.end_pos))
               (Imfant.run im stream))
        in
        let t_seq, _ = best (fun () -> time (fun () -> Imfant.run im stream)) in
        List.map
          (fun d ->
            let sf =
              Mfsa_engine.Sfa.compile
                { Mfsa_engine.Sfa.domains = d; threshold = 1 }
                ~inner z
            in
            let events l =
              List.sort compare
                (List.map
                   (fun e ->
                     (e.Mfsa_engine.Sfa.fsa, e.Mfsa_engine.Sfa.end_pos))
                   l)
            in
            let t_wall, wall_events =
              best (fun () -> time (fun () -> Mfsa_engine.Sfa.run sf stream))
            in
            let span_of t =
              Array.fold_left max 0. t.Mfsa_engine.Sfa.chunk_s
              +. t.Mfsa_engine.Sfa.join_s
            in
            let t_span, span_events =
              best (fun () ->
                  let ev, t = Mfsa_engine.Sfa.run_span sf stream in
                  (span_of t, ev))
            in
            let agree =
              events wall_events = reference && events span_events = reference
            in
            let r =
              {
                sf_dataset = ds.Datasets.abbr;
                sf_inner = inner;
                sf_bytes = size;
                sf_domains = d;
                sf_seq_mbps = mbps t_seq;
                sf_span_mbps = mbps t_span;
                sf_wall_mbps = mbps t_wall;
                sf_span_speedup = (if t_span > 0. then t_seq /. t_span else 0.);
                sf_wall_speedup = (if t_wall > 0. then t_seq /. t_wall else 0.);
                sf_agree = agree;
              }
            in
            Printf.printf
              "sfa %s d=%d: seq %.1f MB/s, span %.1f MB/s (%.2fx), wall %.1f \
               MB/s (%.2fx) %s\n%!"
              r.sf_dataset d r.sf_seq_mbps r.sf_span_mbps r.sf_span_speedup
              r.sf_wall_mbps r.sf_wall_speedup
              (if agree then "AGREE" else "DIVERGED")
            ;
            r)
          [ 1; 2; 3; 4 ])
      (Datasets.all ~scale:cfg.E.scale ())
  in
  write_sfa_json rows;
  if List.exists (fun r -> not r.sf_agree) rows then exit 1

(* ---------------------------------------------------- Entry point *)

let experiments ~engines ~engine =
  [
    ("fig1", E.fig1); ("table1", E.table1); ("fig7", E.fig7); ("fig8", E.fig8);
    ("table2", E.table2); ("fig9", E.fig9); ("fig10", E.fig10);
    ("ablation-ccsplit", E.ablation_ccsplit);
    ("ablation-cluster", E.ablation_cluster);
    ("ablation-strategy", E.ablation_strategy);
    ("ablation-bisim", E.ablation_bisim); ("baselines", E.baselines);
    ("engine-compare", fun cfg -> E.engine_compare ?engines cfg);
    ("hotloop", E.hotloop);
    ("complexity", E.complexity); ("live-update", live_update);
    ("serve", serve_bench ~engine);
  ]

let () =
  (* The same -e/--engine flag as mfsa-match and mfsa-live, pulled out
     of the artefact names before dispatch. *)
  let rec split acc engine = function
    | [] -> (List.rev acc, engine)
    | [ ("-e" | "--engine") ] ->
        prerr_endline "bench: -e/--engine needs an engine name (or 'help')";
        exit 2
    | ("-e" | "--engine") :: v :: rest -> split acc (Some v) rest
    | a :: rest -> split (a :: acc) engine rest
  in
  let args, engine_opt = split [] None (List.tl (Array.to_list Sys.argv)) in
  (match engine_opt with
  | Some "help" ->
      print_string (Registry.help ());
      exit 0
  | Some e when Option.is_none (Registry.find e) ->
      Printf.eprintf "bench: %s\n" (Registry.unknown_message e);
      exit 2
  | _ -> ());
  let engine = Option.value ~default:"imfant" engine_opt in
  let engines = Option.map (fun e -> [ e ]) engine_opt in
  let experiments = experiments ~engines ~engine in
  match args with
  | [ "bechamel" ] -> run_bechamel ()
  | [ "json" ] ->
      let cfg = E.default () in
      let engine_rows = E.engine_rows ?engines cfg in
      let serve_rows = serve_measurements ~engine cfg in
      write_engines_json engine_rows;
      write_serve_json serve_rows;
      write_obs_json engine_rows serve_rows
  | [ "hotloop" ] ->
      let cfg = E.default () in
      let rows = E.hotloop_rows cfg in
      print_string (E.hotloop_report cfg rows);
      print_newline ();
      write_hotloop_json rows
  | [ "serve-check" ] -> serve_check ~engine ()
  | [ "persist" ] -> persist_bench (E.default ())
  | [ "planner" ] -> planner_bench (E.default ())
  | [ "sfa" ] -> sfa_bench (E.default ())
  | "loadgen" :: rest -> loadgen ~engine rest
  | [] ->
      let cfg = E.default () in
      Printf.printf
        "MFSA evaluation harness (scale %.2f, stream %d KiB, %d reps)\n\
         Set MFSA_SCALE / MFSA_STREAM_KB / MFSA_REPS or use bin/mfsa_report\n\
         --paper-scale for the paper's full configuration.\n\n"
        cfg.E.scale cfg.E.stream_kb cfg.E.reps;
      print_string (E.run_all cfg);
      print_newline ();
      print_string (live_update cfg);
      print_newline ();
      print_string (serve_bench ~engine cfg);
      print_newline ();
      run_bechamel ()
  | names ->
      let cfg = E.default () in
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some f ->
              print_string (f cfg);
              print_newline ()
          | None ->
              Printf.eprintf
                "unknown artefact %S (expected bechamel, json, serve-check, \
                 planner, sfa, persist, %s)\n"
                name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
